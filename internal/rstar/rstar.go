// Package rstar implements an n-dimensional R*-tree (Beckmann, Kriegel,
// Schneider, Seeger; SIGMOD 1990) with two extension points the TAR-tree
// needs:
//
//   - a pluggable entry-grouping Strategy, so the same engine can run the
//     paper's three groupings — spatial extents (IND-spa and the integral
//     3D strategy, which is the R* heuristics over normalized 3-dimensional
//     boxes) and aggregate-distribution similarity (IND-agg);
//   - an Augmenter hook that maintains per-entry auxiliary data (the
//     TAR-tree attaches a temporal index to every entry) across inserts,
//     splits, forced reinserts and deletes.
//
// The tree is kept in main memory, as in the paper's experimental setup;
// query-time node accesses are counted by the callers that traverse it.
package rstar

import (
	"fmt"
	"math"
	"sort"

	"tartree/internal/geo"
)

// Item identifies the object stored in a leaf entry (a POI id).
type Item int64

// Entry is one slot of a node: a bounding rectangle plus either a child
// node (internal entries) or an item (leaf entries). Data carries the
// caller's augmentation (the TAR-tree's TIA handle).
type Entry struct {
	Rect  geo.Rect
	Child *Node // nil in leaf entries
	Item  Item
	Data  any
}

// IsLeafEntry reports whether the entry stores an item rather than a child.
func (e Entry) IsLeafEntry() bool { return e.Child == nil }

// Node is an R*-tree node.
type Node struct {
	Level   int // 0 for leaf nodes
	Parent  *Node
	Entries []Entry
	// slot caches this node's entry index in Parent.Entries, maintained at
	// every entry move so the parent-path adjustments (extend/refresh on
	// every insert) resolve the child's entry in O(1) instead of scanning.
	// Meaningless on the root. The frozen flat layout (FlatTree) carries
	// neither Parent pointers nor slots — offsets replace both.
	slot int
}

// MBR returns the bounding rectangle of all entries in n.
func (n *Node) MBR(dims int) geo.Rect {
	r := geo.EmptyRect(dims)
	for _, e := range n.Entries {
		r = r.Union(e.Rect)
	}
	return r
}

// entryIndexOf returns the position of the entry pointing at child. The
// cached slot answers in O(1); the scan remains as a defensive fallback
// (Check reports any site that let the cache go stale).
func (n *Node) entryIndexOf(child *Node) int {
	if s := child.slot; s >= 0 && s < len(n.Entries) && n.Entries[s].Child == child {
		return s
	}
	for i := range n.Entries {
		if n.Entries[i].Child == child {
			child.slot = i
			return i
		}
	}
	return -1
}

// syncSlots re-caches the slot of every child after entry removals or
// reorderings shifted the remaining entries: one scan per adjust pass
// instead of one scan per upward step.
func (n *Node) syncSlots() {
	for i := range n.Entries {
		if c := n.Entries[i].Child; c != nil {
			c.slot = i
		}
	}
}

// Strategy decides how entries are grouped into nodes. The paper's Section
// 5 shows that the grouping strategy — not the search algorithm — is what
// separates the TAR-tree from its alternatives.
type Strategy interface {
	// ChooseSubtree returns the index of the entry of n to descend into
	// when inserting e. n is an internal node.
	ChooseSubtree(t *Tree, n *Node, e Entry) int
	// Split partitions entries (length Capacity+1) into two groups, each
	// with at least MinFill entries.
	Split(t *Tree, level int, entries []Entry) (left, right []Entry)
}

// Reinserter is an optional Strategy extension enabling the R*-tree forced
// reinsertion: on the first overflow at a level during an insertion, the
// returned entry indexes are removed and reinserted instead of splitting.
type Reinserter interface {
	// PickReinsert returns the indexes (into n.Entries) of entries to
	// reinsert, or nil to split instead.
	PickReinsert(t *Tree, n *Node) []int
}

// Augmenter maintains per-entry auxiliary data.
type Augmenter interface {
	// Make computes the Data of the parent entry of node n from scratch,
	// reusing or disposing old (which may be nil).
	Make(n *Node, old any) (any, error)
	// Extend updates data so it additionally covers entry e (which was
	// inserted somewhere in the subtree) and returns the new value.
	Extend(data any, e Entry) (any, error)
	// Dispose releases data that is no longer referenced.
	Dispose(data any) error
}

// Config parameterizes a Tree.
type Config struct {
	// Dims is the dimensionality of the bounding rectangles (2 for IND-spa
	// and IND-agg, 3 for the integral 3D strategy).
	Dims int
	// Capacity is the maximum number of entries per node. The paper derives
	// it from the node size in bytes: 50 for 2D and 36 for 3D at 1024 B.
	Capacity int
	// MinFill is the minimum number of entries per non-root node; zero
	// selects the R*-tree default of 40% of Capacity.
	MinFill int
	// Strategy groups entries; nil selects the R* spatial heuristics.
	Strategy Strategy
	// Aug maintains per-entry data; nil disables augmentation.
	Aug Augmenter
	// ReinsertFraction is the share of entries removed on forced reinsert;
	// zero selects the R*-tree default of 30%.
	ReinsertFraction float64
	// DisableReinsert turns the R* forced reinsertion off (overflowing
	// nodes split immediately). Exposed for the ablation experiments.
	DisableReinsert bool
}

// Tree is an in-memory n-dimensional R*-tree.
type Tree struct {
	cfg           Config
	root          *Node
	height        int // number of levels; 1 = root is a leaf
	size          int // number of items
	strategy      Strategy
	aug           Augmenter
	minFill       int
	reinsertCount int
}

// New creates an empty tree.
func New(cfg Config) *Tree {
	if cfg.Dims < 1 || cfg.Dims > geo.MaxDims {
		panic(fmt.Sprintf("rstar: invalid dims %d", cfg.Dims))
	}
	if cfg.Capacity < 4 {
		panic(fmt.Sprintf("rstar: capacity %d too small", cfg.Capacity))
	}
	t := &Tree{cfg: cfg, strategy: cfg.Strategy, aug: cfg.Aug}
	if t.strategy == nil {
		t.strategy = SpatialStrategy{}
	}
	t.minFill = cfg.MinFill
	if t.minFill == 0 {
		t.minFill = cfg.Capacity * 2 / 5
	}
	if t.minFill < 1 {
		t.minFill = 1
	}
	if t.minFill > cfg.Capacity/2 {
		t.minFill = cfg.Capacity / 2
	}
	frac := cfg.ReinsertFraction
	if frac <= 0 {
		frac = 0.3
	}
	t.reinsertCount = int(float64(cfg.Capacity) * frac)
	if t.reinsertCount < 1 {
		t.reinsertCount = 1
	}
	if max := cfg.Capacity + 1 - t.minFill; t.reinsertCount > max {
		t.reinsertCount = max
	}
	t.root = &Node{Level: 0}
	t.height = 1
	return t
}

// Root returns the root node for external traversals (the kNNTA best-first
// search and the collective scheme walk the tree themselves so they can
// count node accesses).
func (t *Tree) Root() *Node { return t.root }

// Dims returns the configured dimensionality.
func (t *Tree) Dims() int { return t.cfg.Dims }

// Capacity returns the per-node entry capacity.
func (t *Tree) Capacity() int { return t.cfg.Capacity }

// MinFill returns the minimum entries per non-root node.
func (t *Tree) MinFill() int { return t.minFill }

// Len returns the number of items stored.
func (t *Tree) Len() int { return t.size }

// Height returns the number of levels.
func (t *Tree) Height() int { return t.height }

// Insert adds a leaf entry to the tree.
func (t *Tree) Insert(e Entry) error {
	if !e.IsLeafEntry() {
		return fmt.Errorf("rstar: Insert requires a leaf entry")
	}
	t.size++
	return t.insertAtLevel(e, 0, make(map[int]bool))
}

// insertAtLevel places e at the given level, with reinsertedLevels tracking
// which levels already performed a forced reinsert during this operation.
func (t *Tree) insertAtLevel(e Entry, level int, reinserted map[int]bool) error {
	n := t.chooseNode(e, level)
	n.Entries = append(n.Entries, e)
	if e.Child != nil {
		e.Child.Parent = n
		e.Child.slot = len(n.Entries) - 1
	}
	if err := t.extendUpward(n, e); err != nil {
		return err
	}
	return t.handleOverflow(n, reinserted)
}

// chooseNode descends from the root to the node at the target level using
// the strategy's ChooseSubtree.
func (t *Tree) chooseNode(e Entry, level int) *Node {
	n := t.root
	for n.Level > level {
		i := t.strategy.ChooseSubtree(t, n, e)
		n = n.Entries[i].Child
	}
	return n
}

// extendUpward grows the rectangles and augmentation data of the entries on
// the path from n's parent entry to the root to cover e.
func (t *Tree) extendUpward(n *Node, e Entry) error {
	for p := n.Parent; p != nil; n, p = p, p.Parent {
		i := p.entryIndexOf(n)
		p.Entries[i].Rect = p.Entries[i].Rect.Union(e.Rect)
		if t.aug != nil {
			d, err := t.aug.Extend(p.Entries[i].Data, e)
			if err != nil {
				return err
			}
			p.Entries[i].Data = d
		}
	}
	return nil
}

// refreshUpward recomputes rectangles and augmentation data on the path
// from n's parent entry to the root (used after shrinking operations).
func (t *Tree) refreshUpward(n *Node) error {
	for p := n.Parent; p != nil; n, p = p, p.Parent {
		i := p.entryIndexOf(n)
		p.Entries[i].Rect = n.MBR(t.cfg.Dims)
		if t.aug != nil {
			d, err := t.aug.Make(n, p.Entries[i].Data)
			if err != nil {
				return err
			}
			p.Entries[i].Data = d
		}
	}
	return nil
}

// handleOverflow resolves capacity violations at n, possibly cascading to
// ancestors.
func (t *Tree) handleOverflow(n *Node, reinserted map[int]bool) error {
	for n != nil && len(n.Entries) > t.cfg.Capacity {
		if n.Parent != nil && !reinserted[n.Level] && !t.cfg.DisableReinsert {
			if r, ok := t.strategy.(Reinserter); ok {
				if idxs := r.PickReinsert(t, n); len(idxs) > 0 {
					reinserted[n.Level] = true
					return t.reinsertEntries(n, idxs, reinserted)
				}
			}
			reinserted[n.Level] = true
		}
		var err error
		n, err = t.splitNode(n, reinserted)
		if err != nil {
			return err
		}
	}
	return nil
}

// reinsertEntries removes the entries at idxs from n and re-inserts them.
func (t *Tree) reinsertEntries(n *Node, idxs []int, reinserted map[int]bool) error {
	sort.Sort(sort.Reverse(sort.IntSlice(idxs)))
	removed := make([]Entry, 0, len(idxs))
	for _, i := range idxs {
		removed = append(removed, n.Entries[i])
		n.Entries = append(n.Entries[:i], n.Entries[i+1:]...)
	}
	n.syncSlots()
	if err := t.refreshUpward(n); err != nil {
		return err
	}
	// Close reinsert: nearest to the node center first.
	center := n.MBR(t.cfg.Dims).Center()
	sort.Slice(removed, func(i, j int) bool {
		return geo.Dist(removed[i].Rect.Center(), center, t.cfg.Dims) <
			geo.Dist(removed[j].Rect.Center(), center, t.cfg.Dims)
	})
	for _, e := range removed {
		if err := t.insertAtLevel(e, n.Level, reinserted); err != nil {
			return err
		}
	}
	return nil
}

// splitNode splits n and returns the parent (which received a new entry and
// may itself overflow), or nil when n was the root.
func (t *Tree) splitNode(n *Node, reinserted map[int]bool) (*Node, error) {
	left, right := t.strategy.Split(t, n.Level, n.Entries)
	if len(left) < t.minFill || len(right) < t.minFill {
		return nil, fmt.Errorf("rstar: strategy split violated min fill (%d/%d)", len(left), len(right))
	}
	// Copy both halves: a strategy may return slices aliasing one array,
	// and the halves live on as two independently growing nodes.
	n.Entries = append([]Entry(nil), left...)
	nn := &Node{Level: n.Level, Entries: append([]Entry(nil), right...)}
	for i := range nn.Entries {
		if c := nn.Entries[i].Child; c != nil {
			c.Parent = nn
			c.slot = i
		}
	}
	for i := range n.Entries {
		if c := n.Entries[i].Child; c != nil {
			c.Parent = n
			c.slot = i
		}
	}

	if n.Parent == nil {
		// Root split: grow a new root.
		root := &Node{Level: n.Level + 1}
		t.root = root
		t.height++
		n.Parent, nn.Parent = root, root
		n.slot, nn.slot = 0, 1
		e1 := Entry{Rect: n.MBR(t.cfg.Dims), Child: n}
		e2 := Entry{Rect: nn.MBR(t.cfg.Dims), Child: nn}
		if t.aug != nil {
			var err error
			if e1.Data, err = t.aug.Make(n, nil); err != nil {
				return nil, err
			}
			if e2.Data, err = t.aug.Make(nn, nil); err != nil {
				return nil, err
			}
		}
		root.Entries = []Entry{e1, e2}
		return nil, nil
	}

	p := n.Parent
	i := p.entryIndexOf(n)
	p.Entries[i].Rect = n.MBR(t.cfg.Dims)
	ne := Entry{Rect: nn.MBR(t.cfg.Dims), Child: nn}
	nn.Parent = p
	nn.slot = len(p.Entries)
	if t.aug != nil {
		var err error
		if p.Entries[i].Data, err = t.aug.Make(n, p.Entries[i].Data); err != nil {
			return nil, err
		}
		if ne.Data, err = t.aug.Make(nn, nil); err != nil {
			return nil, err
		}
	}
	p.Entries = append(p.Entries, ne)
	// The ancestors above p still hold pre-split data; splitting does not
	// change coverage, so their rects and augmentation stay valid.
	return p, nil
}

// Delete removes the leaf entry with the given item whose rectangle
// intersects rect. It reports whether an entry was removed.
func (t *Tree) Delete(rect geo.Rect, item Item) (bool, error) {
	leaf, idx := t.findLeaf(t.root, rect, item)
	if leaf == nil {
		return false, nil
	}
	if t.aug != nil {
		if err := t.aug.Dispose(leaf.Entries[idx].Data); err != nil {
			return false, err
		}
	}
	leaf.Entries = append(leaf.Entries[:idx], leaf.Entries[idx+1:]...)
	t.size--
	if err := t.condense(leaf); err != nil {
		return false, err
	}
	return true, nil
}

func (t *Tree) findLeaf(n *Node, rect geo.Rect, item Item) (*Node, int) {
	if n.Level == 0 {
		for i, e := range n.Entries {
			if e.Item == item {
				return n, i
			}
		}
		return nil, -1
	}
	for _, e := range n.Entries {
		if e.Rect.Intersects(rect, t.cfg.Dims) {
			if leaf, i := t.findLeaf(e.Child, rect, item); leaf != nil {
				return leaf, i
			}
		}
	}
	return nil, -1
}

// condense implements the R-tree CondenseTree: underfull nodes on the path
// from leaf to root are dissolved and their entries reinserted.
func (t *Tree) condense(n *Node) error {
	type orphan struct {
		level   int
		entries []Entry
	}
	var orphans []orphan
	for n.Parent != nil {
		p := n.Parent
		if len(n.Entries) < t.minFill {
			i := p.entryIndexOf(n)
			if t.aug != nil {
				if err := t.aug.Dispose(p.Entries[i].Data); err != nil {
					return err
				}
			}
			p.Entries = append(p.Entries[:i], p.Entries[i+1:]...)
			p.syncSlots()
			orphans = append(orphans, orphan{level: n.Level, entries: n.Entries})
		} else {
			// refreshUpward fixes this node's entry and all ancestors.
			if err := t.refreshUpward(n); err != nil {
				return err
			}
			break
		}
		n = p
	}
	// Shrink the root if it is an internal node with a single child.
	for t.root.Level > 0 && len(t.root.Entries) == 1 {
		if t.aug != nil {
			if err := t.aug.Dispose(t.root.Entries[0].Data); err != nil {
				return err
			}
		}
		t.root = t.root.Entries[0].Child
		t.root.Parent = nil
		t.height--
	}
	if t.root.Level > 0 && len(t.root.Entries) == 0 {
		t.root = &Node{Level: 0}
		t.height = 1
	}
	// Reinsert orphans at their original levels (deepest first so that
	// higher-level entries find enough structure).
	reinserted := make(map[int]bool)
	for _, o := range orphans {
		for _, e := range o.entries {
			if o.level > t.root.Level {
				// The tree shrank below the orphan's level; descend into its
				// subtree and reinsert the leaf entries instead.
				if err := t.reinsertSubtree(e, reinserted); err != nil {
					return err
				}
				continue
			}
			if err := t.insertAtLevel(e, o.level, reinserted); err != nil {
				return err
			}
		}
	}
	return nil
}

func (t *Tree) reinsertSubtree(e Entry, reinserted map[int]bool) error {
	if e.Child == nil {
		return t.insertAtLevel(e, 0, reinserted)
	}
	for _, c := range e.Child.Entries {
		if err := t.reinsertSubtree(c, reinserted); err != nil {
			return err
		}
	}
	if t.aug != nil {
		return t.aug.Dispose(e.Data)
	}
	return nil
}

// VisitNodes walks every node (pre-order), stopping when fn returns false.
func (t *Tree) VisitNodes(fn func(n *Node) bool) {
	var walk func(n *Node) bool
	walk = func(n *Node) bool {
		if !fn(n) {
			return false
		}
		for _, e := range n.Entries {
			if e.Child != nil {
				if !walk(e.Child) {
					return false
				}
			}
		}
		return true
	}
	walk(t.root)
}

// NodeCount returns the number of nodes, split into leaves and internals.
func (t *Tree) NodeCount() (leaves, internals int) {
	t.VisitNodes(func(n *Node) bool {
		if n.Level == 0 {
			leaves++
		} else {
			internals++
		}
		return true
	})
	return
}

// Check validates structural invariants; tests call it after mutations.
func (t *Tree) Check() error {
	if t.root.Parent != nil {
		return fmt.Errorf("rstar: root has a parent")
	}
	count := 0
	var walk func(n *Node, isRoot bool) error
	walk = func(n *Node, isRoot bool) error {
		if !isRoot && len(n.Entries) < t.minFill {
			return fmt.Errorf("rstar: node underfull (%d < %d) at level %d", len(n.Entries), t.minFill, n.Level)
		}
		if len(n.Entries) > t.cfg.Capacity {
			return fmt.Errorf("rstar: node overfull (%d > %d)", len(n.Entries), t.cfg.Capacity)
		}
		for i, e := range n.Entries {
			if n.Level == 0 {
				if e.Child != nil {
					return fmt.Errorf("rstar: child pointer in leaf node")
				}
				count++
				continue
			}
			if e.Child == nil {
				return fmt.Errorf("rstar: leaf entry in internal node at level %d", n.Level)
			}
			if e.Child.Parent != n {
				return fmt.Errorf("rstar: broken parent pointer at level %d", n.Level)
			}
			if e.Child.slot != i {
				return fmt.Errorf("rstar: stale slot cache at level %d (cached %d, actual %d)", n.Level, e.Child.slot, i)
			}
			if e.Child.Level != n.Level-1 {
				return fmt.Errorf("rstar: child level %d under level %d", e.Child.Level, n.Level)
			}
			mbr := e.Child.MBR(t.cfg.Dims)
			if !e.Rect.Contains(mbr, t.cfg.Dims) {
				return fmt.Errorf("rstar: entry rect %v does not contain child MBR %v", e.Rect, mbr)
			}
			if err := walk(e.Child, false); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t.root, true); err != nil {
		return err
	}
	if count != t.size {
		return fmt.Errorf("rstar: item count %d != size %d", count, t.size)
	}
	if t.root.Level != t.height-1 {
		return fmt.Errorf("rstar: root level %d != height-1 %d", t.root.Level, t.height-1)
	}
	return nil
}

// ---------------------------------------------------------------------------
// R* spatial strategy

// SpatialStrategy implements the R*-tree heuristics: least-overlap /
// least-enlargement subtree choice, margin-minimizing split-axis selection,
// overlap-minimizing distribution, and forced reinsertion of the entries
// farthest from the node center. With 3-dimensional normalized boxes this
// is exactly the paper's integral 3D grouping strategy; with 2-dimensional
// boxes it is the IND-spa alternative.
type SpatialStrategy struct{}

// ChooseSubtree implements Strategy.
func (SpatialStrategy) ChooseSubtree(t *Tree, n *Node, e Entry) int {
	dims := t.cfg.Dims
	best := 0
	if n.Level == 1 {
		// Children are leaves: minimize overlap enlargement.
		bestOverlap, bestEnl, bestArea := math.Inf(1), math.Inf(1), math.Inf(1)
		for i, c := range n.Entries {
			grown := c.Rect.Union(e.Rect)
			var before, after float64
			for j, o := range n.Entries {
				if j == i {
					continue
				}
				before += c.Rect.OverlapArea(o.Rect, dims)
				after += grown.OverlapArea(o.Rect, dims)
			}
			dOverlap := after - before
			enl := c.Rect.Enlargement(e.Rect, dims)
			area := c.Rect.Area(dims)
			if dOverlap < bestOverlap ||
				(dOverlap == bestOverlap && (enl < bestEnl ||
					(enl == bestEnl && area < bestArea))) {
				best, bestOverlap, bestEnl, bestArea = i, dOverlap, enl, area
			}
		}
		return best
	}
	// Minimize area enlargement, ties by area.
	bestEnl, bestArea := math.Inf(1), math.Inf(1)
	for i, c := range n.Entries {
		enl := c.Rect.Enlargement(e.Rect, dims)
		area := c.Rect.Area(dims)
		if enl < bestEnl || (enl == bestEnl && area < bestArea) {
			best, bestEnl, bestArea = i, enl, area
		}
	}
	return best
}

// Split implements the R* topological split.
func (SpatialStrategy) Split(t *Tree, level int, entries []Entry) ([]Entry, []Entry) {
	dims := t.cfg.Dims
	m := t.minFill
	n := len(entries)

	// Choose the split axis: the one minimizing the total margin over all
	// candidate distributions, considering both min- and max-sorted orders.
	bestAxis, bestMargin := 0, math.Inf(1)
	orders := make([][]Entry, dims*2)
	for axis := 0; axis < dims; axis++ {
		byMin := append([]Entry(nil), entries...)
		a := axis
		sort.Slice(byMin, func(i, j int) bool {
			if byMin[i].Rect.Min[a] != byMin[j].Rect.Min[a] {
				return byMin[i].Rect.Min[a] < byMin[j].Rect.Min[a]
			}
			return byMin[i].Rect.Max[a] < byMin[j].Rect.Max[a]
		})
		byMax := append([]Entry(nil), entries...)
		sort.Slice(byMax, func(i, j int) bool {
			if byMax[i].Rect.Max[a] != byMax[j].Rect.Max[a] {
				return byMax[i].Rect.Max[a] < byMax[j].Rect.Max[a]
			}
			return byMax[i].Rect.Min[a] < byMax[j].Rect.Min[a]
		})
		orders[axis*2], orders[axis*2+1] = byMin, byMax
		margin := 0.0
		for _, ord := range [][]Entry{byMin, byMax} {
			for k := m; k <= n-m; k++ {
				margin += mbrOf(ord[:k], dims).Margin(dims) + mbrOf(ord[k:], dims).Margin(dims)
			}
		}
		if margin < bestMargin {
			bestAxis, bestMargin = axis, margin
		}
	}

	// Choose the distribution along the best axis minimizing overlap,
	// ties by combined area.
	var bestL, bestR []Entry
	bestOverlap, bestArea := math.Inf(1), math.Inf(1)
	for _, ord := range [][]Entry{orders[bestAxis*2], orders[bestAxis*2+1]} {
		for k := m; k <= n-m; k++ {
			lm, rm := mbrOf(ord[:k], dims), mbrOf(ord[k:], dims)
			ov := lm.OverlapArea(rm, dims)
			area := lm.Area(dims) + rm.Area(dims)
			if ov < bestOverlap || (ov == bestOverlap && area < bestArea) {
				bestOverlap, bestArea = ov, area
				bestL = append([]Entry(nil), ord[:k]...)
				bestR = append([]Entry(nil), ord[k:]...)
			}
		}
	}
	return bestL, bestR
}

// PickReinsert implements Reinserter: the R* forced reinsert removes the
// configured fraction of entries whose centers are farthest from the node
// center.
func (SpatialStrategy) PickReinsert(t *Tree, n *Node) []int {
	p := t.reinsertCount
	if p <= 0 || len(n.Entries)-p < t.minFill {
		return nil
	}
	center := n.MBR(t.cfg.Dims).Center()
	type di struct {
		d float64
		i int
	}
	ds := make([]di, len(n.Entries))
	for i, e := range n.Entries {
		ds[i] = di{geo.Dist(e.Rect.Center(), center, t.cfg.Dims), i}
	}
	sort.Slice(ds, func(a, b int) bool { return ds[a].d > ds[b].d })
	idxs := make([]int, p)
	for i := 0; i < p; i++ {
		idxs[i] = ds[i].i
	}
	return idxs
}

func mbrOf(entries []Entry, dims int) geo.Rect {
	r := geo.EmptyRect(dims)
	for _, e := range entries {
		r = r.Union(e.Rect)
	}
	return r
}
