package rstar

import (
	"container/heap"
	"math"
	"math/rand"
	"sort"
	"testing"

	"tartree/internal/geo"
)

func pt(x, y float64) geo.Rect { return geo.PointRect(geo.Vector{x, y}) }

func newTree(capacity int) *Tree {
	return New(Config{Dims: 2, Capacity: capacity})
}

func TestInsertSmall(t *testing.T) {
	tr := newTree(8)
	for i := 0; i < 5; i++ {
		if err := tr.Insert(Entry{Rect: pt(float64(i), 0), Item: Item(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Len() != 5 || tr.Height() != 1 {
		t.Fatalf("len=%d height=%d", tr.Len(), tr.Height())
	}
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertCausesSplits(t *testing.T) {
	tr := newTree(8)
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		if err := tr.Insert(Entry{Rect: pt(r.Float64()*100, r.Float64()*100), Item: Item(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Height() < 3 {
		t.Errorf("height = %d, want >= 3", tr.Height())
	}
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
	leaves, internals := tr.NodeCount()
	if leaves == 0 || internals == 0 {
		t.Errorf("nodes = %d/%d", leaves, internals)
	}
}

// rangeSearch is a reference traversal for tests.
func rangeSearch(t *Tree, q geo.Rect) []Item {
	var out []Item
	var walk func(n *Node)
	walk = func(n *Node) {
		for _, e := range n.Entries {
			if !e.Rect.Intersects(q, t.Dims()) {
				continue
			}
			if e.Child == nil {
				out = append(out, e.Item)
			} else {
				walk(e.Child)
			}
		}
	}
	walk(t.Root())
	return out
}

func TestRangeSearchMatchesBruteForce(t *testing.T) {
	tr := newTree(12)
	r := rand.New(rand.NewSource(17))
	type obj struct {
		rect geo.Rect
		item Item
	}
	var objs []obj
	for i := 0; i < 800; i++ {
		a := geo.Vector{r.Float64() * 100, r.Float64() * 100}
		b := geo.Vector{a[0] + r.Float64()*5, a[1] + r.Float64()*5}
		rect := geo.Rect{Min: a, Max: b}
		objs = append(objs, obj{rect, Item(i)})
		if err := tr.Insert(Entry{Rect: rect, Item: Item(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
	for q := 0; q < 50; q++ {
		a := geo.Vector{r.Float64() * 100, r.Float64() * 100}
		b := geo.Vector{a[0] + r.Float64()*20, a[1] + r.Float64()*20}
		qr := geo.Rect{Min: a, Max: b}
		got := rangeSearch(tr, qr)
		var want []Item
		for _, o := range objs {
			if o.rect.Intersects(qr, 2) {
				want = append(want, o.item)
			}
		}
		sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		if len(got) != len(want) {
			t.Fatalf("query %d: got %d items, want %d", q, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("query %d: mismatch at %d", q, i)
			}
		}
	}
}

// nnEntry/nnQueue implement a reference best-first kNN for tests.
type nnEntry struct {
	dist float64
	e    Entry
}
type nnQueue []nnEntry

func (q nnQueue) Len() int           { return len(q) }
func (q nnQueue) Less(i, j int) bool { return q[i].dist < q[j].dist }
func (q nnQueue) Swap(i, j int)      { q[i], q[j] = q[j], q[i] }
func (q *nnQueue) Push(x any)        { *q = append(*q, x.(nnEntry)) }
func (q *nnQueue) Pop() any          { old := *q; n := len(old); x := old[n-1]; *q = old[:n-1]; return x }

func knn(t *Tree, q geo.Vector, k int) []Item {
	pq := &nnQueue{}
	for _, e := range t.Root().Entries {
		heap.Push(pq, nnEntry{geo.MinDist(q, e.Rect, t.Dims()), e})
	}
	var out []Item
	for pq.Len() > 0 && len(out) < k {
		ne := heap.Pop(pq).(nnEntry)
		if ne.e.Child == nil {
			out = append(out, ne.e.Item)
			continue
		}
		for _, c := range ne.e.Child.Entries {
			heap.Push(pq, nnEntry{geo.MinDist(q, c.Rect, t.Dims()), c})
		}
	}
	return out
}

func TestKNNMatchesBruteForce(t *testing.T) {
	tr := newTree(16)
	r := rand.New(rand.NewSource(23))
	pts := make([]geo.Vector, 1000)
	for i := range pts {
		pts[i] = geo.Vector{r.Float64() * 100, r.Float64() * 100}
		tr.Insert(Entry{Rect: geo.PointRect(pts[i]), Item: Item(i)})
	}
	for trial := 0; trial < 30; trial++ {
		q := geo.Vector{r.Float64() * 100, r.Float64() * 100}
		k := 1 + r.Intn(20)
		got := knn(tr, q, k)
		idx := make([]int, len(pts))
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, b int) bool {
			return geo.Dist(q, pts[idx[a]], 2) < geo.Dist(q, pts[idx[b]], 2)
		})
		for i := 0; i < k; i++ {
			// Compare distances (ties can reorder items).
			gd := geo.Dist(q, pts[got[i]], 2)
			wd := geo.Dist(q, pts[idx[i]], 2)
			if math.Abs(gd-wd) > 1e-9 {
				t.Fatalf("trial %d k=%d pos %d: dist %v want %v", trial, k, i, gd, wd)
			}
		}
	}
}

func TestDelete(t *testing.T) {
	tr := newTree(8)
	r := rand.New(rand.NewSource(41))
	rects := make([]geo.Rect, 400)
	for i := range rects {
		rects[i] = pt(r.Float64()*50, r.Float64()*50)
		tr.Insert(Entry{Rect: rects[i], Item: Item(i)})
	}
	// Delete a missing item.
	if ok, err := tr.Delete(rects[0], Item(9999)); err != nil || ok {
		t.Fatalf("delete missing = %v %v", ok, err)
	}
	// Delete half the items.
	for i := 0; i < 200; i++ {
		ok, err := tr.Delete(rects[i], Item(i))
		if err != nil || !ok {
			t.Fatalf("delete %d = %v %v", i, ok, err)
		}
		if i%50 == 0 {
			if err := tr.Check(); err != nil {
				t.Fatalf("after delete %d: %v", i, err)
			}
		}
	}
	if tr.Len() != 200 {
		t.Fatalf("len = %d", tr.Len())
	}
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
	// Remaining items still findable.
	for i := 200; i < 400; i++ {
		found := rangeSearch(tr, rects[i])
		ok := false
		for _, it := range found {
			if it == Item(i) {
				ok = true
			}
		}
		if !ok {
			t.Fatalf("item %d lost after deletes", i)
		}
	}
	// Delete everything.
	for i := 200; i < 400; i++ {
		if ok, _ := tr.Delete(rects[i], Item(i)); !ok {
			t.Fatalf("final delete %d failed", i)
		}
	}
	if tr.Len() != 0 || tr.Height() != 1 {
		t.Fatalf("after full delete: len=%d height=%d", tr.Len(), tr.Height())
	}
}

func TestThreeDimensional(t *testing.T) {
	tr := New(Config{Dims: 3, Capacity: 10})
	r := rand.New(rand.NewSource(8))
	for i := 0; i < 600; i++ {
		v := geo.Vector{r.Float64(), r.Float64(), r.Float64()}
		if err := tr.Insert(Entry{Rect: geo.PointRect(v), Item: Item(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
	q := geo.Rect{Min: geo.Vector{0.2, 0.2, 0.2}, Max: geo.Vector{0.5, 0.5, 0.5}}
	got := rangeSearch(tr, q)
	if len(got) == 0 {
		t.Error("3d range search found nothing")
	}
}

// countingAug counts hook invocations and verifies they keep a sum
// augmentation consistent: each entry's Data equals the number of items in
// its subtree.
type countingAug struct {
	makes, extends, disposes int
}

func (a *countingAug) Make(n *Node, old any) (any, error) {
	a.makes++
	sum := 0
	for _, e := range n.Entries {
		if e.Child == nil {
			sum++
		} else {
			sum += e.Data.(int)
		}
	}
	return sum, nil
}

func (a *countingAug) Extend(data any, e Entry) (any, error) {
	a.extends++
	if data == nil {
		data = 0
	}
	add := 1
	if e.Child != nil {
		// A reinserted internal entry carries its whole subtree.
		add = e.Data.(int)
	}
	return data.(int) + add, nil
}

func (a *countingAug) Dispose(data any) error {
	a.disposes++
	return nil
}

func checkAug(t *testing.T, tr *Tree) {
	t.Helper()
	var verify func(n *Node) int
	verify = func(n *Node) int {
		total := 0
		for _, e := range n.Entries {
			if e.Child == nil {
				total++
				continue
			}
			sub := verify(e.Child)
			if e.Data.(int) != sub {
				t.Fatalf("aug mismatch: entry says %d, subtree has %d", e.Data.(int), sub)
			}
			total += sub
		}
		return total
	}
	if got := verify(tr.Root()); got != tr.Len() {
		t.Fatalf("aug total = %d, len = %d", got, tr.Len())
	}
}

func TestAugmenterMaintained(t *testing.T) {
	aug := &countingAug{}
	tr := New(Config{Dims: 2, Capacity: 8, Aug: aug})
	r := rand.New(rand.NewSource(55))
	rects := make([]geo.Rect, 600)
	for i := range rects {
		rects[i] = pt(r.Float64()*100, r.Float64()*100)
		if err := tr.Insert(Entry{Rect: rects[i], Item: Item(i)}); err != nil {
			t.Fatal(err)
		}
		if i%100 == 0 {
			checkAug(t, tr)
		}
	}
	checkAug(t, tr)
	if aug.makes == 0 || aug.extends == 0 {
		t.Error("hooks never called")
	}
	// Deletions must keep the augmentation consistent too.
	for i := 0; i < 300; i++ {
		if ok, err := tr.Delete(rects[i], Item(i)); err != nil || !ok {
			t.Fatalf("delete %d: %v %v", i, ok, err)
		}
		if i%60 == 0 {
			checkAug(t, tr)
			if err := tr.Check(); err != nil {
				t.Fatal(err)
			}
		}
	}
	checkAug(t, tr)
}

// customStrategy groups by x-coordinate only, to prove strategies plug in.
type customStrategy struct{}

func (customStrategy) ChooseSubtree(t *Tree, n *Node, e Entry) int {
	best, bestD := 0, math.Inf(1)
	for i, c := range n.Entries {
		d := math.Abs(c.Rect.Center()[0] - e.Rect.Center()[0])
		if d < bestD {
			best, bestD = i, d
		}
	}
	return best
}

func (customStrategy) Split(t *Tree, level int, entries []Entry) ([]Entry, []Entry) {
	s := append([]Entry(nil), entries...)
	sort.Slice(s, func(i, j int) bool { return s[i].Rect.Min[0] < s[j].Rect.Min[0] })
	mid := len(s) / 2
	return s[:mid], s[mid:]
}

func TestCustomStrategy(t *testing.T) {
	tr := New(Config{Dims: 2, Capacity: 6, Strategy: customStrategy{}})
	r := rand.New(rand.NewSource(66))
	for i := 0; i < 300; i++ {
		if err := tr.Insert(Entry{Rect: pt(r.Float64()*10, r.Float64()*10), Item: Item(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
	if got := len(rangeSearch(tr, geo.Rect{Min: geo.Vector{-1, -1}, Max: geo.Vector{11, 11}})); got != 300 {
		t.Fatalf("full range = %d items", got)
	}
}

func TestInsertRejectsInternalEntry(t *testing.T) {
	tr := newTree(8)
	if err := tr.Insert(Entry{Rect: pt(0, 0), Child: &Node{}}); err == nil {
		t.Fatal("expected error")
	}
}

func TestMinFillDefaults(t *testing.T) {
	tr := New(Config{Dims: 2, Capacity: 50})
	if tr.MinFill() != 20 {
		t.Errorf("minFill = %d, want 20 (40%% of 50)", tr.MinFill())
	}
	tr2 := New(Config{Dims: 2, Capacity: 50, MinFill: 10})
	if tr2.MinFill() != 10 {
		t.Errorf("explicit minFill = %d", tr2.MinFill())
	}
}

// Duplicate points stress the split logic (zero-area nodes).
func TestDuplicatePoints(t *testing.T) {
	tr := newTree(8)
	for i := 0; i < 200; i++ {
		if err := tr.Insert(Entry{Rect: pt(1, 1), Item: Item(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
	if got := len(rangeSearch(tr, pt(1, 1))); got != 200 {
		t.Fatalf("found %d duplicates, want 200", got)
	}
}

func BenchmarkInsertUniform(b *testing.B) {
	tr := New(Config{Dims: 2, Capacity: 50})
	r := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Insert(Entry{Rect: pt(r.Float64()*1000, r.Float64()*1000), Item: Item(i)})
	}
}
