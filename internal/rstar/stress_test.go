package rstar

import (
	"math/rand"
	"testing"

	"tartree/internal/geo"
)

func TestInterleavedInsertDeleteStress(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	tr := New(Config{Dims: 2, Capacity: 8})
	type obj struct {
		rect geo.Rect
		item Item
	}
	var live []obj
	next := 0
	for step := 0; step < 20000; step++ {
		if r.Intn(3) != 0 || len(live) < 5 {
			o := obj{pt(r.Float64(), r.Float64()), Item(next)}
			next++
			if err := tr.Insert(Entry{Rect: o.rect, Item: o.item}); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
			live = append(live, o)
		} else {
			i := r.Intn(len(live))
			ok, err := tr.Delete(live[i].rect, live[i].item)
			if err != nil || !ok {
				t.Fatalf("step %d: delete %v %v", step, ok, err)
			}
			live = append(live[:i], live[i+1:]...)
		}
		if err := tr.Check(); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
	}
}

func TestBulkLoadThenMutateStress(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	type obj struct {
		rect geo.Rect
		item Item
	}
	var live []obj
	next := 0
	tr := New(Config{Dims: 2, Capacity: 50})
	for step := 0; step < 6000; step++ {
		switch {
		case step%997 == 0 && len(live) > 0: // periodic bulk rebuild
			entries := make([]Entry, len(live))
			for i, o := range live {
				entries[i] = Entry{Rect: o.rect, Item: o.item}
			}
			var err error
			tr, err = BulkLoad(Config{Dims: 2, Capacity: 50}, entries)
			if err != nil {
				t.Fatalf("step %d: bulk: %v", step, err)
			}
		case r.Intn(3) != 0 || len(live) < 5:
			o := obj{pt(r.Float64(), r.Float64()), Item(next)}
			next++
			if err := tr.Insert(Entry{Rect: o.rect, Item: o.item}); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
			live = append(live, o)
		default:
			i := r.Intn(len(live))
			ok, err := tr.Delete(live[i].rect, live[i].item)
			if err != nil || !ok {
				t.Fatalf("step %d: delete %v %v", step, ok, err)
			}
			live = append(live[:i], live[i+1:]...)
		}
		if err := tr.Check(); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
	}
}
