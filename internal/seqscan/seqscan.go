// Package seqscan implements the straightforward approach of Section 3.2:
// answer a kNNTA query by adding up the per-epoch aggregates of every POI
// over the query interval, computing every ranking score, and keeping the
// top k. Its complexity is O(m'N + N log m + k log N); the paper uses it as
// the baseline every index variant is compared against.
package seqscan

import (
	"container/heap"
	"sort"

	"tartree/internal/core"
	"tartree/internal/geo"
	"tartree/internal/tia"
)

// Scanner holds the POIs and their epoch aggregates in flat arrays.
type Scanner struct {
	world     geo.Rect
	maxDist   float64
	semantics tia.Semantics
	pois      []core.POI
	recs      [][]tia.Record // per POI, ascending by Ts
	global    *tia.Mem       // per-epoch maxima (the normalization range)
}

// New creates an empty scanner over the given world rectangle.
func New(world geo.Rect, semantics tia.Semantics) *Scanner {
	return &Scanner{
		world:     world,
		maxDist:   world.Diagonal(2),
		semantics: semantics,
		global:    tia.NewMem(),
	}
}

// Add registers a POI with its epoch aggregates (ascending, non-zero).
func (s *Scanner) Add(p core.POI, history []tia.Record) {
	s.pois = append(s.pois, p)
	recs := append([]tia.Record(nil), history...)
	sort.Slice(recs, func(i, j int) bool { return recs[i].Ts < recs[j].Ts })
	s.recs = append(s.recs, recs)
	for _, r := range recs {
		if cur, err := s.global.Aggregate(tia.Interval{Start: r.Ts, End: r.Ts + 1}, tia.Intersecting); err == nil && r.Agg > cur {
			s.global.Put(r) //nolint:errcheck // Mem.Put cannot fail
		}
	}
}

// Len returns the number of POIs.
func (s *Scanner) Len() int { return len(s.pois) }

type scored struct {
	res core.Result
}

// maxHeap keeps the k smallest scores by evicting the largest.
type maxHeap []scored

func (h maxHeap) Len() int           { return len(h) }
func (h maxHeap) Less(i, j int) bool { return h[i].res.Score > h[j].res.Score }
func (h maxHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *maxHeap) Push(x any)        { *h = append(*h, x.(scored)) }
func (h *maxHeap) Pop() any          { o := *h; n := len(o); x := o[n-1]; *h = o[:n-1]; return x }

// Query scans every POI and returns the top-k results in ascending score
// order.
func (s *Scanner) Query(q core.Query) ([]core.Result, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	gmaxI, err := s.global.Aggregate(q.Iq, s.semantics)
	if err != nil {
		return nil, err
	}
	gmax := float64(gmaxI)
	qv := geo.Vector{q.X, q.Y}
	h := &maxHeap{}
	for i, p := range s.pois {
		var agg int64
		for _, r := range s.recs[i] {
			if r.Ts >= q.Iq.End {
				break
			}
			if s.semantics == tia.Contained {
				if q.Iq.Contains(r) {
					agg += r.Agg
				}
			} else if q.Iq.Intersects(r) {
				agg += r.Agg
			}
		}
		s0 := geo.Dist(qv, geo.Vector{p.X, p.Y}, 2) / s.maxDist
		s1 := 1.0
		if gmax > 0 {
			s1 = 1 - float64(agg)/gmax
		}
		res := core.Result{
			POI:   p,
			Score: q.Alpha0*s0 + (1-q.Alpha0)*s1,
			S0:    s0,
			S1:    s1,
			Agg:   agg,
		}
		if h.Len() < q.K {
			heap.Push(h, scored{res})
		} else if res.Score < (*h)[0].res.Score {
			(*h)[0] = scored{res}
			heap.Fix(h, 0)
		}
	}
	out := make([]core.Result, h.Len())
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = heap.Pop(h).(scored).res
	}
	return out, nil
}
