package seqscan

import (
	"math"
	"testing"

	"tartree/internal/core"
	"tartree/internal/geo"
	"tartree/internal/lbsn"
	"tartree/internal/tia"
)

func world() geo.Rect {
	return geo.Rect{Min: geo.Vector{0, 0}, Max: geo.Vector{100, 100}}
}

func TestEmptyScanner(t *testing.T) {
	s := New(world(), tia.Contained)
	res, err := s.Query(core.Query{X: 1, Y: 1, Iq: tia.Interval{Start: 0, End: 10}, K: 3, Alpha0: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 0 {
		t.Fatalf("results from empty scanner: %v", res)
	}
}

func TestQueryValidation(t *testing.T) {
	s := New(world(), tia.Contained)
	if _, err := s.Query(core.Query{K: 0, Alpha0: 0.5, Iq: tia.Interval{Start: 0, End: 1}}); err == nil {
		t.Fatal("invalid query accepted")
	}
}

func TestPaperExample(t *testing.T) {
	// Reuse the Section 3.2 example: top-1 must be f with score ≈0.058.
	s := New(geo.Rect{Min: geo.Vector{0, 0}, Max: geo.Vector{11, 11}}, tia.Contained)
	aggs := map[string][3]int64{
		"a": {1, 1, 0}, "b": {1, 0, 1}, "c": {2, 2, 2}, "d": {2, 0, 0},
		"e": {1, 1, 0}, "f": {3, 5, 4}, "g": {2, 3, 1}, "h": {1, 1, 0},
		"i": {2, 2, 2}, "j": {2, 0, 0}, "k": {1, 0, 1}, "l": {1, 0, 1},
	}
	pos := map[string][2]float64{
		"a": {2, 9}, "b": {4, 10}, "c": {6, 9}, "d": {1, 7},
		"e": {6, 7}, "f": {8, 5}, "g": {9, 6}, "h": {1, 4},
		"i": {9, 3}, "j": {2, 1}, "k": {4, 2}, "l": {1, 1},
	}
	names := []string{"a", "b", "c", "d", "e", "f", "g", "h", "i", "j", "k", "l"}
	for i, name := range names {
		var hist []tia.Record
		for ep, a := range aggs[name] {
			if a > 0 {
				hist = append(hist, tia.Record{Ts: int64(ep), Te: int64(ep + 1), Agg: a})
			}
		}
		p := pos[name]
		s.Add(core.POI{ID: int64(i + 1), X: p[0], Y: p[1]}, hist)
	}
	res, err := s.Query(core.Query{X: 5, Y: 5, Iq: tia.Interval{Start: 0, End: 3}, K: 1, Alpha0: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].POI.ID != 6 {
		t.Fatalf("top-1 = %+v, want f", res)
	}
	if math.Abs(res[0].Score-0.058) > 0.002 {
		t.Errorf("score = %.4f, want ≈0.058", res[0].Score)
	}
}

// TestMatchesTARTree: the baseline and every TAR-tree variant return the
// same top-k scores on generated LBSN data.
func TestMatchesTARTree(t *testing.T) {
	d, err := lbsn.Generate(lbsn.NYC.Scaled(0.03))
	if err != nil {
		t.Fatal(err)
	}
	scan := New(d.World, tia.Contained)
	for i := range d.POIs {
		p := &d.POIs[i]
		hist := lbsn.History(p, d.Spec.Start, 7*lbsn.Day, 0)
		var total int64
		for _, r := range hist {
			total += r.Agg
		}
		if total < d.Spec.MinEffective {
			continue
		}
		scan.Add(core.POI{ID: p.ID, X: p.X, Y: p.Y}, hist)
	}
	for _, g := range []core.Grouping{core.TAR3D, core.IndSpa, core.IndAgg} {
		tr, err := d.Build(lbsn.BuildOptions{Grouping: g})
		if err != nil {
			t.Fatal(err)
		}
		if tr.Len() != scan.Len() {
			t.Fatalf("%v: tree has %d POIs, scanner %d", g, tr.Len(), scan.Len())
		}
		for _, q := range d.Queries(15, 10, 0.3, 42) {
			want, err := scan.Query(q)
			if err != nil {
				t.Fatal(err)
			}
			got, _, err := tr.Query(q)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("%v: %d vs %d results", g, len(got), len(want))
			}
			for i := range got {
				if math.Abs(got[i].Score-want[i].Score) > 1e-9 {
					t.Fatalf("%v pos %d: %.9f vs %.9f", g, i, got[i].Score, want[i].Score)
				}
			}
		}
	}
}

func TestTopKOrderingAndTies(t *testing.T) {
	s := New(world(), tia.Contained)
	// Four POIs at identical distance with distinct aggregates.
	for i := int64(1); i <= 4; i++ {
		s.Add(core.POI{ID: i, X: 50 + float64(i), Y: 50},
			[]tia.Record{{Ts: 0, Te: 10, Agg: i}})
	}
	res, err := s.Query(core.Query{X: 50, Y: 50, Iq: tia.Interval{Start: 0, End: 10}, K: 4, Alpha0: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res); i++ {
		if res[i].Score < res[i-1].Score {
			t.Fatal("results out of order")
		}
	}
	// With α0 small, the biggest aggregate wins.
	if res[0].POI.ID != 4 {
		t.Errorf("top-1 = %d, want 4", res[0].POI.ID)
	}
}
