package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"tartree/internal/core"
	"tartree/internal/httpapi"
	"tartree/internal/pagestore"
	"tartree/internal/tia"
)

// ShardError reports that one shard failed mid-query. The coordinator
// never degrades to a partial top-k: any unrecoverable shard failure
// aborts the whole query with this error, and cmd/tarserve maps it to a
// 503 envelope naming the shard — a loud error beats a silently wrong
// answer.
type ShardError struct {
	Shard int
	URL   string
	Err   error
}

func (e *ShardError) Error() string {
	return fmt.Sprintf("shard %d (%s): %v", e.Shard, e.URL, e.Err)
}

func (e *ShardError) Unwrap() error { return e.Err }

// errGone marks a 410 from a shard: the session (or its index version) is
// gone and the coordinator should restart that shard's search.
type errGone struct{ msg string }

func (e errGone) Error() string { return e.msg }

// Coordinator fans a kNNTA query out to every shard and merges the
// streamed candidate batches into the global top-k, implementing
// core.Querier so servers and CLIs treat a sharded cluster exactly like a
// local tree.
//
// The search runs as barrier rounds: each round the coordinator sends the
// same global bound — the kth best score over everything merged so far —
// to all in-flight shards in parallel, waits for all of them, merges in
// shard order, and tightens the bound. Rounds keep the execution
// deterministic for a fixed dataset and shard map (the work counters are
// benchdiff-gated), and the shared bound is what makes scatter-gather
// cheap: a shard whose best frontier entry cannot beat the global kth
// stops immediately instead of drilling to its own local top-k.
type Coordinator struct {
	// Shards are the shard base URLs in shard-map order.
	Shards []string
	// Client is the HTTP client used for shard calls (http.DefaultClient
	// when nil).
	Client *http.Client
	// Batch is the per-shard candidates-per-round budget; 0 selects
	// max(1, ⌈k/4⌉), small enough that the bound tightens mid-query.
	Batch int
	// NoBound disables bound pushes (every shard drains to its local
	// top-k-ish stream until exhausted batches); the bench control arm.
	NoBound bool
	// MaxRestarts bounds version-drift restarts per shard (default 3).
	MaxRestarts int
	Metrics     *Metrics
}

type shardState struct {
	idx     int
	url     string
	session uint64
	open    bool // session live on the shard
	done    bool
	pruned  bool
	cands   []candidate
	stats   statsDelta
	rounds  int
	pushes  int
	restart int
	elapsed time.Duration
}

// QueryCtx implements core.Querier.
func (c *Coordinator) QueryCtx(ctx context.Context, q core.Query, opts *core.QueryOpts) ([]core.Result, core.QueryStats, error) {
	res, stats, shards, err := c.Query(ctx, q)
	if opts != nil && opts.Explain != nil {
		opts.Explain.Shards = shards
		opts.Explain.Finish(res, &stats, err)
	}
	return res, stats, err
}

// Query runs one scatter-gather query and additionally returns the
// per-shard attribution rows (the explain's Shards section).
func (c *Coordinator) Query(ctx context.Context, q core.Query) ([]core.Result, core.QueryStats, []core.ExplainShard, error) {
	var stats core.QueryStats
	if err := q.Validate(); err != nil {
		return nil, stats, nil, err
	}
	if len(c.Shards) == 0 {
		return nil, stats, nil, fmt.Errorf("%w: coordinator has no shards", core.ErrInvalid)
	}
	c.Metrics.addQuery()

	states := make([]*shardState, len(c.Shards))
	for i, url := range c.Shards {
		states[i] = &shardState{idx: i, url: url}
	}

	gmax, err := c.fetchGmax(ctx, q, states)
	if err != nil {
		return nil, stats, c.explainRows(states), err
	}

	batch := c.Batch
	if batch <= 0 {
		batch = (q.K + 3) / 4
	}
	if batch < 1 {
		batch = 1
	}

	for {
		var active []*shardState
		for _, st := range states {
			if !st.done {
				active = append(active, st)
			}
		}
		if len(active) == 0 {
			break
		}
		bound := c.globalBound(states, q.K)
		var wg sync.WaitGroup
		resps := make([]*roundResponse, len(active))
		errs := make([]error, len(active))
		took := make([]time.Duration, len(active))
		for i, st := range active {
			wg.Add(1)
			go func(i int, st *shardState) {
				defer wg.Done()
				t0 := time.Now()
				resps[i], errs[i] = c.roundTrip(ctx, st, q, gmax, bound, batch)
				took[i] = time.Since(t0)
			}(i, st)
		}
		wg.Wait()

		var straggler time.Duration
		for i, st := range active {
			st.rounds++
			st.elapsed += took[i]
			if took[i] > straggler {
				straggler = took[i]
			}
			if bound != nil {
				st.pushes++
			}
			// One CompShard read per shard round: the distributed analogue
			// of a node access, attributed at level = shard index.
			stats.IO.AddRead(pagestore.NewIOTag(pagestore.CompShard, st.idx), true)
			if err := errs[i]; err != nil {
				if _, gone := err.(errGone); gone {
					// The shard's index moved under the session. Drop
					// everything it contributed (its old candidates belong
					// to a dead version) and start over next round with a
					// bound recomputed from the surviving candidates.
					st.restart++
					c.Metrics.addRestart()
					if st.restart > c.maxRestarts() {
						c.Metrics.addError()
						return nil, stats, c.explainRows(states),
							&ShardError{Shard: st.idx, URL: st.url, Err: fmt.Errorf("gave up after %d restarts: %v", st.restart-1, err)}
					}
					st.session, st.open, st.done, st.pruned = 0, false, false, false
					st.cands = nil
					continue
				}
				c.Metrics.addError()
				if ctx.Err() != nil {
					return nil, stats, c.explainRows(states), fmt.Errorf("%w: %v", core.ErrCanceled, ctx.Err())
				}
				return nil, stats, c.explainRows(states), &ShardError{Shard: st.idx, URL: st.url, Err: err}
			}
			resp := resps[i]
			st.session = resp.Session
			st.open = !resp.Done
			st.cands = append(st.cands, resp.Candidates...)
			st.stats.Internal += resp.Stats.Internal
			st.stats.Leaf += resp.Stats.Leaf
			st.stats.TIAReads += resp.Stats.TIAReads
			st.stats.TIAPhysical += resp.Stats.TIAPhysical
			st.stats.Scored += resp.Stats.Scored
			if resp.Done {
				st.done = true
				if resp.Pruned {
					st.pruned = true
					c.Metrics.addPruned()
				}
			}
		}
		c.Metrics.addRound()
		c.Metrics.addFanout(len(active))
		if bound != nil {
			c.Metrics.addBoundPushes(len(active))
		}
		c.Metrics.observeStraggler(straggler.Seconds())
	}

	// Merge: all candidates, ascending (score, id) — the id tiebreak makes
	// the distributed answer deterministic where pop order is not.
	var all []candidate
	for _, st := range states {
		all = append(all, st.cands...)
		stats.InternalAccesses += st.stats.Internal
		stats.LeafAccesses += st.stats.Leaf
		stats.TIAAccesses += st.stats.TIAReads
		stats.TIAPhysical += st.stats.TIAPhysical
		stats.Scored += st.stats.Scored
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Score != all[j].Score {
			return all[i].Score < all[j].Score
		}
		return all[i].POI < all[j].POI
	})
	if len(all) > q.K {
		all = all[:q.K]
	}
	results := make([]core.Result, len(all))
	for i, cd := range all {
		results[i] = core.Result{
			POI:   core.POI{ID: cd.POI, X: cd.X, Y: cd.Y},
			Score: cd.Score, S0: cd.S0, S1: cd.S1, Agg: cd.Agg,
		}
	}
	return results, stats, c.explainRows(states), nil
}

func (c *Coordinator) maxRestarts() int {
	if c.MaxRestarts > 0 {
		return c.MaxRestarts
	}
	return 3
}

func (c *Coordinator) client() *http.Client {
	if c.Client != nil {
		return c.Client
	}
	return http.DefaultClient
}

// fetchGmax runs the normalizer exchange: every shard ships its
// global-mirror records for the query interval, the coordinator MaxMerges
// them (rebuilding exactly the single-node global mirror) and aggregates.
// The per-shard aggregation configs must agree — a mismatched shard is a
// deployment error, reported as a ShardError.
func (c *Coordinator) fetchGmax(ctx context.Context, q core.Query, states []*shardState) (float64, error) {
	resps := make([]*gmaxResponse, len(states))
	errs := make([]error, len(states))
	var wg sync.WaitGroup
	for i, st := range states {
		wg.Add(1)
		go func(i int, st *shardState) {
			defer wg.Done()
			url := fmt.Sprintf("%s/v1/shard/gmax?start=%d&end=%d", st.url, q.Iq.Start, q.Iq.End)
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
			if err != nil {
				errs[i] = err
				return
			}
			resp, err := c.client().Do(req)
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs[i] = httpapi.ReadError(resp)
				return
			}
			var gr gmaxResponse
			if err := json.NewDecoder(resp.Body).Decode(&gr); err != nil {
				errs[i] = err
				return
			}
			resps[i] = &gr
		}(i, st)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			c.Metrics.addError()
			if ctx.Err() != nil {
				return 0, fmt.Errorf("%w: %v", core.ErrCanceled, ctx.Err())
			}
			return 0, &ShardError{Shard: i, URL: states[i].url, Err: err}
		}
	}
	merged := tia.NewMem()
	for i, gr := range resps {
		if gr.Of != len(states) || gr.Index != i {
			return 0, &ShardError{Shard: i, URL: states[i].url,
				Err: fmt.Errorf("identifies as shard %d/%d, coordinator expects %d/%d", gr.Index, gr.Of, i, len(states))}
		}
		if gr.Semantics != resps[0].Semantics || gr.AggFunc != resps[0].AggFunc {
			return 0, &ShardError{Shard: i, URL: states[i].url,
				Err: fmt.Errorf("aggregation config (sem=%d func=%d) disagrees with shard 0 (sem=%d func=%d)",
					gr.Semantics, gr.AggFunc, resps[0].Semantics, resps[0].AggFunc)}
		}
		if len(gr.Records) == 0 {
			continue
		}
		if err := tia.MaxMerge(merged, tia.NewMemFromSorted(gr.Records)); err != nil {
			return 0, &ShardError{Shard: i, URL: states[i].url, Err: err}
		}
	}
	agg, err := merged.AggregateFunc(q.Iq, tia.Semantics(resps[0].Semantics), tia.Func(resps[0].AggFunc))
	if err != nil {
		return 0, err
	}
	return float64(agg), nil
}

// globalBound returns the kth best merged score, or nil while fewer than k
// candidates exist (or bound pushing is disabled).
func (c *Coordinator) globalBound(states []*shardState, k int) *float64 {
	if c.NoBound {
		return nil
	}
	var scores []float64
	for _, st := range states {
		for _, cd := range st.cands {
			scores = append(scores, cd.Score)
		}
	}
	if len(scores) < k {
		return nil
	}
	sort.Float64s(scores)
	b := scores[k-1]
	return &b
}

// roundTrip serves one shard round: session open on the first call, resume
// after. A 410 comes back as errGone for the restart path.
func (c *Coordinator) roundTrip(ctx context.Context, st *shardState, q core.Query, gmax float64, bound *float64, batch int) (*roundResponse, error) {
	var url string
	var body any
	if !st.open {
		url = st.url + "/v1/shard/query"
		body = queryRequest{
			X: q.X, Y: q.Y, K: q.K, Alpha: q.Alpha0,
			Start: q.Iq.Start, End: q.Iq.End,
			Gmax: gmax, Bound: bound, Batch: batch,
		}
	} else {
		url = st.url + "/v1/shard/next"
		body = nextRequest{Session: st.session, Bound: bound, Batch: batch}
	}
	buf, err := json.Marshal(body)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(buf))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.client().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusGone {
		e := httpapi.ReadError(resp)
		return nil, errGone{msg: e.Message}
	}
	if resp.StatusCode != http.StatusOK {
		return nil, httpapi.ReadError(resp)
	}
	var rr roundResponse
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		return nil, err
	}
	return &rr, nil
}

func (c *Coordinator) explainRows(states []*shardState) []core.ExplainShard {
	rows := make([]core.ExplainShard, len(states))
	for i, st := range states {
		rows[i] = core.ExplainShard{
			Shard:         st.idx,
			URL:           st.url,
			Results:       len(st.cands),
			Rounds:        st.rounds,
			BoundPushes:   st.pushes,
			NodeAccesses:  int64(st.stats.Internal + st.stats.Leaf),
			TIAReads:      st.stats.TIAReads,
			Pruned:        st.pruned,
			Restarts:      st.restart,
			ElapsedMicros: st.elapsed.Microseconds(),
		}
	}
	return rows
}
