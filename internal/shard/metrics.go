package shard

import (
	"tartree/internal/obs"
)

// Metrics publishes the scatter-gather telemetry into an obs.Registry. A
// nil *Metrics is valid and records nothing (the internal/repl convention).
//
// Coordinator side:
//
//	tartree_shard_queries_total        distributed queries served
//	tartree_shard_fanout_total         shard round-trips issued
//	tartree_shard_rounds_total         barrier rounds run
//	tartree_shard_bound_pushes_total   round-trips carrying a global bound
//	tartree_shard_pruned_total         shards stopped by the global bound
//	tartree_shard_restarts_total       sessions restarted on version drift
//	tartree_shard_errors_total         failed shard round-trips
//	tartree_shard_straggler_seconds    slowest-shard latency per round
//
// Shard side:
//
//	tartree_shard_sessions_total       search sessions opened
//	tartree_shard_session_rounds_total rounds served
//	tartree_shard_candidates_total     candidates streamed up
//	tartree_shard_expired_total        sessions dropped (TTL, cap, drift)
type Metrics struct {
	Queries     *obs.Counter
	Fanout      *obs.Counter
	Rounds      *obs.Counter
	BoundPushes *obs.Counter
	Pruned      *obs.Counter
	Restarts    *obs.Counter
	Errors      *obs.Counter
	Straggler   *obs.Histogram

	Sessions      *obs.Counter
	SessionRounds *obs.Counter
	Candidates    *obs.Counter
	Expired       *obs.Counter
}

// NewMetrics registers the shard series in r. Pass nil to disable.
func NewMetrics(r *obs.Registry) *Metrics {
	if r == nil {
		return nil
	}
	return &Metrics{
		Queries:     r.Counter("tartree_shard_queries_total"),
		Fanout:      r.Counter("tartree_shard_fanout_total"),
		Rounds:      r.Counter("tartree_shard_rounds_total"),
		BoundPushes: r.Counter("tartree_shard_bound_pushes_total"),
		Pruned:      r.Counter("tartree_shard_pruned_total"),
		Restarts:    r.Counter("tartree_shard_restarts_total"),
		Errors:      r.Counter("tartree_shard_errors_total"),
		Straggler:   r.Histogram("tartree_shard_straggler_seconds", nil),

		Sessions:      r.Counter("tartree_shard_sessions_total"),
		SessionRounds: r.Counter("tartree_shard_session_rounds_total"),
		Candidates:    r.Counter("tartree_shard_candidates_total"),
		Expired:       r.Counter("tartree_shard_expired_total"),
	}
}

func (m *Metrics) addQuery() {
	if m != nil {
		m.Queries.Inc()
	}
}

func (m *Metrics) addFanout(n int) {
	if m != nil {
		m.Fanout.Add(int64(n))
	}
}

func (m *Metrics) addRound() {
	if m != nil {
		m.Rounds.Inc()
	}
}

func (m *Metrics) addBoundPushes(n int) {
	if m != nil {
		m.BoundPushes.Add(int64(n))
	}
}

func (m *Metrics) addPruned() {
	if m != nil {
		m.Pruned.Inc()
	}
}

func (m *Metrics) addRestart() {
	if m != nil {
		m.Restarts.Inc()
	}
}

func (m *Metrics) addError() {
	if m != nil {
		m.Errors.Inc()
	}
}

func (m *Metrics) observeStraggler(sec float64) {
	if m != nil {
		m.Straggler.Observe(sec)
	}
}

func (m *Metrics) addSession() {
	if m != nil {
		m.Sessions.Inc()
	}
}

func (m *Metrics) addSessionRound() {
	if m != nil {
		m.SessionRounds.Inc()
	}
}

func (m *Metrics) addCandidates(n int) {
	if m != nil {
		m.Candidates.Add(int64(n))
	}
}

func (m *Metrics) addExpired() {
	if m != nil {
		m.Expired.Inc()
	}
}
