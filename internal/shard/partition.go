// Package shard spatially partitions the POI set across N shard processes
// and runs kNNTA as scatter-gather with a shared global ranking bound.
//
// The partitioner is STR-style (the same sort-tile-recurse idea the
// parallel bulk loader uses): sort POIs by x, cut into √N columns of equal
// population, sort each column by y and cut into rows. The resulting Map
// is a tiny JSON document (split coordinates only) that datagen emits and
// every tarserve process loads; membership is *defined* by Map.Locate, so
// any two processes holding the same map agree exactly on which shard owns
// a point, ties included.
//
// Every shard indexes its POI subset over the FULL world rectangle. That
// is load-bearing for answer identity: the ranking score normalizes
// distance by the world diagonal, so shards sharing the world share the
// normalizer and per-POI scores are bit-identical to single-node scores.
package shard

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"

	"tartree/internal/core"
	"tartree/internal/geo"
)

// Map is a spatial partition of the world into N half-open rectangular
// cells, one per shard. It serializes to JSON (datagen -shard-map) and is
// self-consistent: Locate is the single source of truth for membership.
type Map struct {
	// N is the shard count; shard indexes are 0..N-1 in column-major
	// order (columns left to right, rows bottom to top within a column).
	N int `json:"n"`
	// World is the full dataset rectangle every shard indexes over.
	World geo.Rect `json:"world"`
	// XSplits are the column boundaries (len = columns−1), ascending. A
	// point with x == split belongs to the right column.
	XSplits []float64 `json:"x_splits"`
	// YSplits are the per-column row boundaries (len = rows(c)−1 for
	// column c), ascending. A point with y == split belongs to the upper
	// row.
	YSplits [][]float64 `json:"y_splits"`
}

// Partition builds an STR-style map over the given POIs: √N columns of
// equal population, each cut into rows of equal population. Empty cells
// are legal (a shard may own no POIs); the POI slice is not modified.
func Partition(pois []core.POI, n int, world geo.Rect) (*Map, error) {
	if n <= 0 {
		return nil, fmt.Errorf("shard: shard count must be positive, got %d", n)
	}
	if world.IsEmpty() || !world.Valid(2) {
		return nil, fmt.Errorf("shard: world rectangle must be valid and non-empty")
	}
	cols := int(math.Round(math.Sqrt(float64(n))))
	if cols < 1 {
		cols = 1
	}
	if cols > n {
		cols = n
	}
	// Distribute n cells over the columns as evenly as possible: the first
	// n%cols columns carry one extra row.
	rows := make([]int, cols)
	for c := range rows {
		rows[c] = n / cols
		if c < n%cols {
			rows[c]++
		}
	}

	pts := append([]core.POI(nil), pois...)
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].X != pts[j].X {
			return pts[i].X < pts[j].X
		}
		return pts[i].ID < pts[j].ID
	})
	m := &Map{N: n, World: world, YSplits: make([][]float64, cols)}
	// Cut columns by population; the split coordinate is the first x of
	// the next column, so the half-open [lo, hi) rule in Locate puts the
	// boundary point exactly where the sort did.
	bounds := cuts(len(pts), cols)
	for c := 0; c < cols-1; c++ {
		m.XSplits = append(m.XSplits, splitAt(len(pts), bounds[c+1], func(i int) float64 { return pts[i].X }))
	}
	for c := 0; c < cols; c++ {
		col := pts[bounds[c]:bounds[c+1]]
		sort.Slice(col, func(i, j int) bool {
			if col[i].Y != col[j].Y {
				return col[i].Y < col[j].Y
			}
			return col[i].ID < col[j].ID
		})
		rb := cuts(len(col), rows[c])
		for r := 0; r < rows[c]-1; r++ {
			m.YSplits[c] = append(m.YSplits[c], splitAt(len(col), rb[r+1], func(i int) float64 { return col[i].Y }))
		}
	}
	return m, nil
}

// cuts returns k+1 boundaries slicing n items into k near-equal runs.
func cuts(n, k int) []int {
	b := make([]int, k+1)
	for i := 0; i <= k; i++ {
		b[i] = i * n / k
	}
	return b
}

// splitAt returns the coordinate of the item at boundary index i, which by
// the half-open rule lands that item (and everything after it) on the
// upper side. Degenerate boundaries (empty runs) reuse a neighbor's
// coordinate, yielding an unreachable zero-width cell — harmless, the
// shard just stays empty.
func splitAt(n, i int, coord func(int) float64) float64 {
	if i >= n {
		i = n - 1
	}
	if i < 0 {
		i = 0
	}
	return coord(i)
}

// Validate checks structural consistency (split counts sum to N, splits
// ascending). Loaders call it after decoding a shard-map file.
func (m *Map) Validate() error {
	if m.N <= 0 {
		return fmt.Errorf("shard: map has non-positive shard count %d", m.N)
	}
	if len(m.XSplits) != len(m.YSplits)-1 {
		return fmt.Errorf("shard: map has %d x-splits for %d columns", len(m.XSplits), len(m.YSplits))
	}
	total := 0
	for _, ys := range m.YSplits {
		total += len(ys) + 1
	}
	if total != m.N {
		return fmt.Errorf("shard: map cells sum to %d, want %d", total, m.N)
	}
	if !sort.Float64sAreSorted(m.XSplits) {
		return fmt.Errorf("shard: x-splits not ascending")
	}
	for c, ys := range m.YSplits {
		if !sort.Float64sAreSorted(ys) {
			return fmt.Errorf("shard: y-splits of column %d not ascending", c)
		}
	}
	if m.World.IsEmpty() || !m.World.Valid(2) {
		return fmt.Errorf("shard: map world rectangle invalid")
	}
	return nil
}

// Locate returns the shard index owning point (x, y). Boundaries are
// half-open: a point on a split belongs to the upper/right cell. Points
// outside the world still map to the nearest edge cell, so ingest near the
// boundary never falls between shards.
func (m *Map) Locate(x, y float64) int {
	c := sort.Search(len(m.XSplits), func(i int) bool { return x < m.XSplits[i] })
	base := 0
	for i := 0; i < c; i++ {
		base += len(m.YSplits[i]) + 1
	}
	ys := m.YSplits[c]
	r := sort.Search(len(ys), func(i int) bool { return y < ys[i] })
	return base + r
}

// Region returns shard i's rectangle, with edge cells extended to the
// world bounds. Healthz reports it as the shard's key range.
func (m *Map) Region(i int) geo.Rect {
	base := 0
	for c := range m.YSplits {
		rows := len(m.YSplits[c]) + 1
		if i < base+rows {
			r := i - base
			rect := m.World
			if c > 0 {
				rect.Min[0] = m.XSplits[c-1]
			}
			if c < len(m.XSplits) {
				rect.Max[0] = m.XSplits[c]
			}
			if r > 0 {
				rect.Min[1] = m.YSplits[c][r-1]
			}
			if r < len(m.YSplits[c]) {
				rect.Max[1] = m.YSplits[c][r]
			}
			return rect
		}
		base += rows
	}
	return geo.EmptyRect(2)
}

// Save writes the map as indented JSON, the format LoadMap and datagen's
// -shard-map consumers read.
func (m *Map) Save(path string) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadMap reads and validates a shard-map JSON file.
func LoadMap(path string) (*Map, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m Map
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("shard: parsing map %s: %w", path, err)
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("shard: map %s: %w", path, err)
	}
	return &m, nil
}
