package shard

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"tartree/internal/core"
	"tartree/internal/geo"
	"tartree/internal/httpapi"
	"tartree/internal/tia"
)

// Wire types of the coordinator⇄shard protocol. Candidates carry the full
// result tuple so the coordinator can hand back core.Results without a
// second lookup; stats are per-round deltas so the coordinator's sums
// equal the shard's cumulative search work exactly.

type gmaxResponse struct {
	Index     int          `json:"index"`
	Of        int          `json:"of"`
	Records   []tia.Record `json:"records"`
	Semantics int          `json:"semantics"`
	AggFunc   int          `json:"agg_func"`
}

type queryRequest struct {
	X     float64  `json:"x"`
	Y     float64  `json:"y"`
	K     int      `json:"k"`
	Alpha float64  `json:"alpha"`
	Start int64    `json:"start"`
	End   int64    `json:"end"`
	Gmax  float64  `json:"gmax"`
	Bound *float64 `json:"bound,omitempty"`
	Batch int      `json:"batch"`
}

type nextRequest struct {
	Session uint64   `json:"session"`
	Bound   *float64 `json:"bound,omitempty"`
	Batch   int      `json:"batch"`
}

type candidate struct {
	POI   int64   `json:"poi"`
	X     float64 `json:"x"`
	Y     float64 `json:"y"`
	Score float64 `json:"score"`
	S0    float64 `json:"s0"`
	S1    float64 `json:"s1"`
	Agg   int64   `json:"agg"`
}

type statsDelta struct {
	Internal    int   `json:"internal"`
	Leaf        int   `json:"leaf"`
	TIAReads    int64 `json:"tia_reads"`
	TIAPhysical int64 `json:"tia_physical"`
	Scored      int   `json:"scored"`
}

func (a statsDelta) sub(b statsDelta) statsDelta {
	return statsDelta{
		Internal:    a.Internal - b.Internal,
		Leaf:        a.Leaf - b.Leaf,
		TIAReads:    a.TIAReads - b.TIAReads,
		TIAPhysical: a.TIAPhysical - b.TIAPhysical,
		Scored:      a.Scored - b.Scored,
	}
}

type roundResponse struct {
	Session    uint64      `json:"session"`
	Candidates []candidate `json:"candidates"`
	// Frontier is the best (lowest) Property-1 bound left in the shard's
	// queue — a floor on every candidate it could still produce. Omitted
	// when the shard is done.
	Frontier *float64   `json:"frontier,omitempty"`
	Done     bool       `json:"done"`
	Pruned   bool       `json:"pruned,omitempty"`
	Stats    statsDelta `json:"stats"`
}

// Viewer runs a function against the shard's tree under whatever lock
// guards it. *wal.Store satisfies it; TreeViewer adapts a bare tree.
type Viewer interface {
	View(func(t *core.Tree))
}

// TreeViewer is the trivial Viewer over an externally-synchronized tree.
type TreeViewer struct{ Tree *core.Tree }

// View implements Viewer.
func (v TreeViewer) View(f func(t *core.Tree)) { f(v.Tree) }

// Server is the shard-side half of scatter-gather: it owns this shard's
// POI subset (indexed over the full world) and serves incremental
// best-first search sessions to the coordinator.
//
// A session wraps one core.Search plus its cumulative stats; each round
// the coordinator POSTs the current global bound and a batch size, and the
// shard pops candidates until the batch fills, the frontier exceeds the
// bound (pruned), or the tree is exhausted. Sessions pin no locks between
// rounds — every round runs under one Viewer.View call — but they do pin
// the index *version*: any answer-changing mutation between rounds makes
// the session unusable and the shard answers 410 Gone, telling the
// coordinator to restart that shard's search against the new state.
type Server struct {
	// Data guards the shard's tree; Index/N/Region describe its place in
	// the shard map (healthz reports them).
	Data   Viewer
	Index  int
	N      int
	Region geo.Rect
	// SessionTTL expires sessions abandoned by a dead coordinator
	// (default 30s, refreshed every round); MaxSessions caps the table
	// (default 64, earliest-expiring evicted first).
	SessionTTL  time.Duration
	MaxSessions int
	Metrics     *Metrics

	mu       sync.Mutex
	sessions map[uint64]*session
	seq      uint64
	now      func() time.Time // tests override; nil means time.Now
}

type session struct {
	id      uint64
	search  *core.Search
	stats   core.QueryStats
	last    statsDelta
	version uint64
	expires time.Time
	busy    bool
}

func (s *Server) clock() time.Time {
	if s.now != nil {
		return s.now()
	}
	return time.Now()
}

func (s *Server) ttl() time.Duration {
	if s.SessionTTL > 0 {
		return s.SessionTTL
	}
	return 30 * time.Second
}

func (s *Server) maxSessions() int {
	if s.MaxSessions > 0 {
		return s.MaxSessions
	}
	return 64
}

// Register mounts the shard routes on mux. cmd/tarserve mounts the same
// handlers behind its role gate instead.
func (s *Server) Register(mux *http.ServeMux) {
	mux.HandleFunc("GET /v1/shard/gmax", s.HandleGmax)
	mux.HandleFunc("POST /v1/shard/query", s.HandleQuery)
	mux.HandleFunc("POST /v1/shard/next", s.HandleNext)
}

// HandleGmax serves the shard's half of the distributed normalizer
// exchange: the global-mirror records intersecting [start, end), plus the
// aggregation configuration so the coordinator can verify all shards agree.
func (s *Server) HandleGmax(w http.ResponseWriter, r *http.Request) {
	start, err1 := strconv.ParseInt(r.URL.Query().Get("start"), 10, 64)
	end, err2 := strconv.ParseInt(r.URL.Query().Get("end"), 10, 64)
	if err1 != nil || err2 != nil || end <= start {
		httpapi.WriteStatusError(w, http.StatusBadRequest, "gmax needs integer start < end")
		return
	}
	var resp gmaxResponse
	s.Data.View(func(t *core.Tree) {
		opts := t.Options()
		resp = gmaxResponse{
			Index:     s.Index,
			Of:        s.N,
			Records:   t.GlobalMirrorRecords(tia.Interval{Start: start, End: end}),
			Semantics: int(opts.Semantics),
			AggFunc:   int(opts.AggFunc),
		}
	})
	writeJSON(w, resp)
}

// HandleQuery opens a search session and serves its first round.
func (s *Server) HandleQuery(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpapi.WriteStatusError(w, http.StatusBadRequest, "malformed shard query body: "+err.Error())
		return
	}
	q := core.Query{
		X: req.X, Y: req.Y, K: req.K, Alpha0: req.Alpha,
		Iq: tia.Interval{Start: req.Start, End: req.End},
	}
	if err := q.Validate(); err != nil {
		httpapi.WriteStatusError(w, http.StatusBadRequest, err.Error())
		return
	}
	gmax := req.Gmax
	sess := &session{}
	var resp *roundResponse
	var searchErr error
	s.Data.View(func(t *core.Tree) {
		sess.version = t.Version()
		// The search must not carry the request context: it lives across
		// requests, and this one's context dies when the handler returns.
		sess.search, searchErr = t.NewSearchWith(q, core.SearchOptions{
			Gmax:        &gmax,
			Stats:       &sess.stats,
			AllowFrozen: true,
		})
		if searchErr != nil {
			return
		}
		resp, searchErr = runRound(sess, req.Bound, req.Batch)
	})
	if searchErr != nil {
		httpapi.WriteStatusError(w, http.StatusInternalServerError, searchErr.Error())
		return
	}
	s.mu.Lock()
	s.seq++
	sess.id = s.seq
	resp.Session = sess.id
	if !resp.Done {
		s.admit(sess)
	}
	s.mu.Unlock()
	s.Metrics.addSession()
	s.Metrics.addSessionRound()
	s.Metrics.addCandidates(len(resp.Candidates))
	writeJSON(w, resp)
}

// HandleNext serves one more round of an open session.
func (s *Server) HandleNext(w http.ResponseWriter, r *http.Request) {
	var req nextRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpapi.WriteStatusError(w, http.StatusBadRequest, "malformed shard next body: "+err.Error())
		return
	}
	s.mu.Lock()
	s.sweep()
	sess, ok := s.sessions[req.Session]
	if !ok {
		s.mu.Unlock()
		httpapi.WriteError(w, http.StatusGone, httpapi.CodeGone,
			fmt.Sprintf("shard session %d unknown or expired; restart the search", req.Session), nil)
		return
	}
	if sess.busy {
		s.mu.Unlock()
		httpapi.WriteError(w, http.StatusConflict, httpapi.CodeConflict,
			fmt.Sprintf("shard session %d already serving a round", req.Session), nil)
		return
	}
	sess.busy = true
	s.mu.Unlock()

	var resp *roundResponse
	var drifted bool
	var searchErr error
	s.Data.View(func(t *core.Tree) {
		if t.Version() != sess.version {
			drifted = true
			return
		}
		resp, searchErr = runRound(sess, req.Bound, req.Batch)
	})

	s.mu.Lock()
	sess.busy = false
	switch {
	case drifted, searchErr != nil, resp != nil && resp.Done:
		delete(s.sessions, sess.id)
	default:
		sess.expires = s.clock().Add(s.ttl())
	}
	s.mu.Unlock()

	if drifted {
		s.Metrics.addExpired()
		httpapi.WriteError(w, http.StatusGone, httpapi.CodeGone,
			fmt.Sprintf("shard index mutated under session %d; restart the search", req.Session),
			map[string]any{"session": req.Session})
		return
	}
	if searchErr != nil {
		httpapi.WriteStatusError(w, http.StatusInternalServerError, searchErr.Error())
		return
	}
	resp.Session = sess.id
	s.Metrics.addSessionRound()
	s.Metrics.addCandidates(len(resp.Candidates))
	writeJSON(w, resp)
}

// admit stores a live session, evicting the earliest-expiring one when the
// table is full. Callers hold s.mu.
func (s *Server) admit(sess *session) {
	if s.sessions == nil {
		s.sessions = make(map[uint64]*session)
	}
	s.sweep()
	for len(s.sessions) >= s.maxSessions() {
		var victim *session
		for _, c := range s.sessions {
			if !c.busy && (victim == nil || c.expires.Before(victim.expires)) {
				victim = c
			}
		}
		if victim == nil {
			break
		}
		delete(s.sessions, victim.id)
		s.Metrics.addExpired()
	}
	sess.expires = s.clock().Add(s.ttl())
	s.sessions[sess.id] = sess
}

// sweep drops expired sessions. Callers hold s.mu.
func (s *Server) sweep() {
	now := s.clock()
	for id, sess := range s.sessions {
		if !sess.busy && sess.expires.Before(now) {
			delete(s.sessions, id)
			s.Metrics.addExpired()
		}
	}
}

// runRound advances one session by up to batch candidates, stopping early
// when the frontier's best possible score can no longer beat the global
// bound. The strict > keeps bound-tying candidates flowing so the
// coordinator — not the shard — resolves ties deterministically.
func runRound(sess *session, bound *float64, batch int) (*roundResponse, error) {
	if batch <= 0 {
		batch = 1
	}
	if batch > 4096 {
		batch = 4096
	}
	resp := &roundResponse{Session: sess.id}
	for len(resp.Candidates) < batch {
		if bound != nil {
			if el := sess.search.Peek(); el != nil && el.Score > *bound {
				resp.Pruned, resp.Done = true, true
				break
			}
		}
		res, err := sess.search.Next()
		if err != nil {
			return nil, err
		}
		if res == nil {
			resp.Done = true
			break
		}
		resp.Candidates = append(resp.Candidates, candidate{
			POI: res.POI.ID, X: res.POI.X, Y: res.POI.Y,
			Score: res.Score, S0: res.S0, S1: res.S1, Agg: res.Agg,
		})
	}
	if !resp.Done {
		if el := sess.search.Peek(); el != nil {
			f := el.Score
			resp.Frontier = &f
		} else {
			resp.Done = true
		}
	}
	cur := statsDelta{
		Internal:    sess.stats.InternalAccesses,
		Leaf:        sess.stats.LeafAccesses,
		TIAReads:    sess.stats.TIAAccesses,
		TIAPhysical: sess.stats.TIAPhysical,
		Scored:      sess.stats.Scored,
	}
	resp.Stats = cur.sub(sess.last)
	sess.last = cur
	return resp, nil
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}
