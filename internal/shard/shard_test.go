package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"tartree/internal/core"
	"tartree/internal/geo"
	"tartree/internal/lbsn"
	"tartree/internal/obs"
	"tartree/internal/tia"
)

// testDataset generates the small GS corpus all shard tests share.
func testDataset(t *testing.T) *lbsn.Dataset {
	t.Helper()
	spec, err := lbsn.SpecByName("GS")
	if err != nil {
		t.Fatal(err)
	}
	d, err := lbsn.Generate(spec.Scaled(0.05))
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestPartitionInvariants(t *testing.T) {
	d := testDataset(t)
	pois := d.EffectivePOIs(0, 0)
	if len(pois) < 20 {
		t.Fatalf("only %d effective POIs", len(pois))
	}
	for _, n := range []int{1, 2, 3, 4, 5, 7} {
		m, err := Partition(pois, n, d.World)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("n=%d: invalid map: %v", n, err)
		}
		counts := make([]int, n)
		for _, p := range pois {
			idx := m.Locate(p.X, p.Y)
			if idx < 0 || idx >= n {
				t.Fatalf("n=%d: Locate(%v,%v) = %d out of range", n, p.X, p.Y, idx)
			}
			counts[idx]++
			r := m.Region(idx)
			if p.X < r.Min[0] || p.X > r.Max[0] || p.Y < r.Min[1] || p.Y > r.Max[1] {
				t.Fatalf("n=%d: POI %d at (%v,%v) located in shard %d but outside its region %v",
					n, p.ID, p.X, p.Y, idx, r)
			}
		}
		total := 0
		for i, c := range counts {
			total += c
			if n <= 4 && c == 0 {
				t.Errorf("n=%d: shard %d owns no POIs (counts %v)", n, i, counts)
			}
		}
		if total != len(pois) {
			t.Fatalf("n=%d: counts sum to %d, want %d", n, total, len(pois))
		}
	}
}

func TestPartitionMapSaveLoad(t *testing.T) {
	d := testDataset(t)
	pois := d.EffectivePOIs(0, 0)
	m, err := Partition(pois, 4, d.World)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "map.json")
	if err := m.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadMap(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pois {
		if a, b := m.Locate(p.X, p.Y), got.Locate(p.X, p.Y); a != b {
			t.Fatalf("POI %d: saved map locates %d, loaded map %d", p.ID, a, b)
		}
	}
	if _, err := LoadMap(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("loading a missing map file succeeded")
	}
}

func TestLocateHalfOpenBoundary(t *testing.T) {
	world := geo.Rect{Min: geo.Vector{0, 0}, Max: geo.Vector{100, 100}}
	m := &Map{N: 2, World: world, XSplits: []float64{50}, YSplits: [][]float64{nil, nil}}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		x, y float64
		want int
	}{
		{49.9999, 50, 0},
		{50, 50, 1}, // on the split: upper/right cell
		{50.0001, 50, 1},
		{-10, 50, 0}, // outside the world: nearest edge cell
		{110, 50, 1},
	}
	for _, c := range cases {
		if got := m.Locate(c.x, c.y); got != c.want {
			t.Errorf("Locate(%v,%v) = %d, want %d", c.x, c.y, got, c.want)
		}
	}
}

// buildFleet builds one tree per shard (each over the full world, keeping
// only its slice) and serves them over loopback HTTP.
func buildFleet(t *testing.T, d *lbsn.Dataset, m *Map, opts lbsn.BuildOptions, fac func() tia.Factory) []string {
	t.Helper()
	urls := make([]string, m.N)
	for i := 0; i < m.N; i++ {
		idx := i
		o := opts
		if fac != nil {
			o.TIA = fac()
		}
		o.Keep = func(p core.POI) bool { return m.Locate(p.X, p.Y) == idx }
		tr, err := d.Build(o)
		if err != nil {
			t.Fatal(err)
		}
		mux := http.NewServeMux()
		(&Server{Data: TreeViewer{Tree: tr}, Index: idx, N: m.N, Region: m.Region(idx)}).Register(mux)
		srv := httptest.NewServer(mux)
		t.Cleanup(srv.Close)
		urls[i] = srv.URL
	}
	return urls
}

// identical requires exact answer identity: the same POI ids with
// bit-identical scores and aggregates, canonicalized by (score, id) so a
// measure-zero tie cannot order-flake the comparison.
func identical(t *testing.T, tag string, want, got []core.Result) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: result count %d, want %d", tag, len(got), len(want))
	}
	canon := func(rs []core.Result) []core.Result {
		out := append([]core.Result(nil), rs...)
		sort.Slice(out, func(i, j int) bool {
			if out[i].Score != out[j].Score {
				return out[i].Score < out[j].Score
			}
			return out[i].POI.ID < out[j].POI.ID
		})
		return out
	}
	a, b := canon(want), canon(got)
	for i := range a {
		if a[i].POI.ID != b[i].POI.ID {
			t.Fatalf("%s: rank %d: POI %d, want %d", tag, i, b[i].POI.ID, a[i].POI.ID)
		}
		if math.Float64bits(a[i].Score) != math.Float64bits(b[i].Score) {
			t.Fatalf("%s: rank %d (POI %d): score %v, want %v", tag, i, a[i].POI.ID, b[i].Score, a[i].Score)
		}
		if a[i].Agg != b[i].Agg {
			t.Fatalf("%s: rank %d (POI %d): agg %d, want %d", tag, i, a[i].POI.ID, b[i].Agg, a[i].Agg)
		}
	}
}

// TestCoordinatorMatchesSingleNode is the identity property: across all
// three groupings, all three TIA backends and varying shard counts, the
// coordinator's merged top-k — built from small batches so the global bound
// is pushed mid-query — equals single-node execution exactly.
func TestCoordinatorMatchesSingleNode(t *testing.T) {
	d := testDataset(t)
	pois := d.EffectivePOIs(0, 0)
	groupings := []struct {
		name string
		g    core.Grouping
	}{{"tar", core.TAR3D}, {"spa", core.IndSpa}, {"agg", core.IndAgg}}
	factories := []struct {
		name string
		fac  func() tia.Factory
	}{
		{"mem", nil},
		{"btree", func() tia.Factory { return tia.NewBTreeFactory(1024, 0) }},
		{"mvbt", func() tia.Factory { return tia.NewMVBTFactory(1024, 0) }},
	}
	for gi, g := range groupings {
		for fi, f := range factories {
			n := 2 + (gi*3+fi)%3 // shard counts 2..4, varied across combos
			t.Run(fmt.Sprintf("%s/%s/n%d", g.name, f.name, n), func(t *testing.T) {
				m, err := Partition(pois, n, d.World)
				if err != nil {
					t.Fatal(err)
				}
				opts := lbsn.BuildOptions{Grouping: g.g, NodeSize: 256}
				var single *core.Tree
				{
					o := opts
					if f.fac != nil {
						o.TIA = f.fac()
					}
					if single, err = d.Build(o); err != nil {
						t.Fatal(err)
					}
				}
				urls := buildFleet(t, d, m, opts, f.fac)
				met := NewMetrics(obs.NewRegistry())
				coord := &Coordinator{Shards: urls, Batch: 2, Metrics: met}
				for qi, q := range d.Queries(12, 5, 0.3, int64(100+gi*10+fi)) {
					want, _, err := single.QueryCtx(context.Background(), q, &core.QueryOpts{NoCache: true})
					if err != nil {
						t.Fatal(err)
					}
					got, _, err := coord.QueryCtx(context.Background(), q, nil)
					if err != nil {
						t.Fatalf("query %d: %v", qi, err)
					}
					identical(t, fmt.Sprintf("query %d", qi), want, got)
				}
				if met.BoundPushes.Value() == 0 {
					t.Error("no bound pushes across the battery; the global bound never reached the shards")
				}
			})
		}
	}
}

// TestCoordinatorKilledShard: a dead shard fails the whole query with a
// ShardError naming it — never a silently partial top-k.
func TestCoordinatorKilledShard(t *testing.T) {
	d := testDataset(t)
	pois := d.EffectivePOIs(0, 0)
	m, err := Partition(pois, 3, d.World)
	if err != nil {
		t.Fatal(err)
	}
	urls := buildFleet(t, d, m, lbsn.BuildOptions{Grouping: core.TAR3D, NodeSize: 256}, nil)
	q := d.Queries(1, 5, 0.3, 7)[0]
	coord := &Coordinator{Shards: urls}
	if _, _, err := coord.QueryCtx(context.Background(), q, nil); err != nil {
		t.Fatalf("healthy fleet: %v", err)
	}

	// Kill shard 1: its server is gone, the query must fail loudly.
	dead := httptest.NewServer(http.NewServeMux())
	deadURL := dead.URL
	dead.Close()
	coord = &Coordinator{Shards: []string{urls[0], deadURL, urls[2]}}
	res, _, err := coord.QueryCtx(context.Background(), q, nil)
	if err == nil {
		t.Fatal("query over a killed shard succeeded")
	}
	var se *ShardError
	if !errors.As(err, &se) {
		t.Fatalf("error %T does not unwrap to *ShardError: %v", err, err)
	}
	if se.Shard != 1 || se.URL != deadURL {
		t.Errorf("ShardError names shard %d (%s), want 1 (%s)", se.Shard, se.URL, deadURL)
	}
	if res != nil {
		t.Errorf("failed query still returned %d results", len(res))
	}
}

// mutatingViewer mutates the tree before selected View calls, simulating
// concurrent ingest between scatter-gather rounds.
type mutatingViewer struct {
	tree   *core.Tree
	views  int
	mutate func(t *core.Tree, view int)
}

func (v *mutatingViewer) View(f func(t *core.Tree)) {
	v.views++
	if v.mutate != nil {
		v.mutate(v.tree, v.views)
	}
	f(v.tree)
}

// driftFleet serves one shard whose index mutates mid-query per mutate.
func driftFleet(t *testing.T, d *lbsn.Dataset, mutate func(tr *core.Tree, view int)) []string {
	t.Helper()
	tr, err := d.Build(lbsn.BuildOptions{Grouping: core.TAR3D, NodeSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	mux := http.NewServeMux()
	(&Server{Data: &mutatingViewer{tree: tr, mutate: mutate}, Index: 0, N: 1}).Register(mux)
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return []string{srv.URL}
}

// driftMutation bumps the tree version the way live ingest would.
func driftMutation(t *testing.T, d *lbsn.Dataset) func(tr *core.Tree, view int) {
	t.Helper()
	return func(tr *core.Tree, view int) {
		var id int64 = -1
		tr.POIs(func(p core.POI, _ int64) bool { id = p.ID; return false })
		if id < 0 {
			t.Error("drift mutation: tree has no POIs")
			return
		}
		if err := tr.AddCheckIn(id, d.Spec.End-1); err != nil {
			t.Errorf("drift mutation: %v", err)
		}
	}
}

// TestCoordinatorVersionDrift: one mutation between rounds makes the shard
// answer 410; the coordinator restarts that shard's search (dropping its
// dead-version candidates) and still completes.
func TestCoordinatorVersionDrift(t *testing.T) {
	d := testDataset(t)
	mut := driftMutation(t, d)
	// View 1 is the gmax exchange, view 2 the session open; mutating at
	// view 3 invalidates the session exactly once, mid-query.
	urls := driftFleet(t, d, func(tr *core.Tree, view int) {
		if view == 3 {
			mut(tr, view)
		}
	})
	met := NewMetrics(obs.NewRegistry())
	coord := &Coordinator{Shards: urls, Batch: 1, Metrics: met}
	q := d.Queries(1, 5, 0.3, 11)[0]
	res, _, err := coord.QueryCtx(context.Background(), q, nil)
	if err != nil {
		t.Fatalf("drifted query failed outright: %v", err)
	}
	if len(res) != 5 {
		t.Errorf("drifted query returned %d results, want 5", len(res))
	}
	if met.Restarts.Value() == 0 {
		t.Error("version drift did not register a restart")
	}
}

// TestCoordinatorDriftGivesUp: an index that mutates on every round can
// never hold a session; after MaxRestarts the coordinator fails loudly.
func TestCoordinatorDriftGivesUp(t *testing.T) {
	d := testDataset(t)
	mut := driftMutation(t, d)
	urls := driftFleet(t, d, func(tr *core.Tree, view int) {
		if view >= 3 {
			mut(tr, view)
		}
	})
	met := NewMetrics(obs.NewRegistry())
	coord := &Coordinator{Shards: urls, Batch: 1, MaxRestarts: 2, Metrics: met}
	q := d.Queries(1, 5, 0.3, 11)[0]
	_, _, err := coord.QueryCtx(context.Background(), q, nil)
	if err == nil {
		t.Fatal("perpetually drifting shard did not fail the query")
	}
	var se *ShardError
	if !errors.As(err, &se) {
		t.Fatalf("error %T does not unwrap to *ShardError: %v", err, err)
	}
	if !strings.Contains(err.Error(), "gave up") {
		t.Errorf("give-up error does not say so: %v", err)
	}
	if got := met.Restarts.Value(); got != 3 {
		t.Errorf("%d restarts before giving up, want 3 (MaxRestarts+1 attempts)", got)
	}
}

// TestSessionTTL: a session abandoned past its TTL answers 410 Gone.
func TestSessionTTL(t *testing.T) {
	d := testDataset(t)
	tr, err := d.Build(lbsn.BuildOptions{Grouping: core.TAR3D, NodeSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	clock := time.Unix(1000, 0)
	srv := &Server{
		Data:       TreeViewer{Tree: tr},
		Index:      0,
		N:          1,
		SessionTTL: 10 * time.Second,
		now:        func() time.Time { return clock },
	}
	q := d.Queries(1, 5, 0.3, 13)[0]
	body, _ := json.Marshal(queryRequest{
		X: q.X, Y: q.Y, K: q.K, Alpha: q.Alpha0,
		Start: q.Iq.Start, End: q.Iq.End, Gmax: 100, Batch: 1,
	})
	rec := httptest.NewRecorder()
	srv.HandleQuery(rec, httptest.NewRequest(http.MethodPost, "/v1/shard/query", bytes.NewReader(body)))
	if rec.Code != http.StatusOK {
		t.Fatalf("open: status %d: %s", rec.Code, rec.Body.String())
	}
	var rr roundResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &rr); err != nil {
		t.Fatal(err)
	}
	if rr.Done {
		t.Fatal("session finished in one round; batch 1 should leave a frontier")
	}

	next := func() *httptest.ResponseRecorder {
		nb, _ := json.Marshal(nextRequest{Session: rr.Session, Batch: 1})
		rec := httptest.NewRecorder()
		srv.HandleNext(rec, httptest.NewRequest(http.MethodPost, "/v1/shard/next", bytes.NewReader(nb)))
		return rec
	}
	if rec := next(); rec.Code != http.StatusOK {
		t.Fatalf("live session: status %d: %s", rec.Code, rec.Body.String())
	}
	clock = clock.Add(11 * time.Second)
	if rec := next(); rec.Code != http.StatusGone {
		t.Fatalf("expired session: status %d, want 410: %s", rec.Code, rec.Body.String())
	}
}
