// Package skyline implements skyline computation in the (s0, s1) score
// space of a kNNTA query: a branch-and-bound skyline (BBS, after Papadias
// et al.) over the TAR-tree, and in-memory skylines over small point sets.
// The minimum-weight-adjustment algorithm of Section 7.1 interchanges POIs
// on (i) the reversed skyline of the top-k results and (ii) the skyline of
// the lower-ranked POIs, which BBS extracts without visiting dominated
// subtrees.
package skyline

import (
	"sort"

	"tartree/internal/core"
)

// Point is a POI projected into score space: S0 the normalized spatial
// distance, S1 = 1 − normalized aggregate.
type Point struct {
	ID     int64
	S0, S1 float64
}

// Dominates reports whether p dominates q under minimization: no worse in
// both coordinates and strictly better in at least one.
func (p Point) Dominates(q Point) bool {
	return p.S0 <= q.S0 && p.S1 <= q.S1 && (p.S0 < q.S0 || p.S1 < q.S1)
}

// DominatesReversed is dominance with both criteria maximized, used for the
// reversed skyline of the top-k set.
func (p Point) DominatesReversed(q Point) bool {
	return p.S0 >= q.S0 && p.S1 >= q.S1 && (p.S0 > q.S0 || p.S1 > q.S1)
}

// covers reports weak dominance of a point over an entry's lower bounds:
// sufficient to prune the whole subtree.
func covers(p Point, s0, s1 float64) bool {
	return p.S0 <= s0 && p.S1 <= s1
}

// Of computes the skyline of points in memory (minimization).
func Of(points []Point) []Point {
	return skylineBy(points, Point.Dominates, func(p Point) (float64, float64) { return p.S0, p.S1 })
}

// OfReversed computes the skyline with the dominating condition reversed
// (maximization), as Section 7.1 prescribes for the top-k set.
func OfReversed(points []Point) []Point {
	return skylineBy(points, Point.DominatesReversed, func(p Point) (float64, float64) { return -p.S0, -p.S1 })
}

// skylineBy sorts by the first coordinate and sweeps, keeping points whose
// second coordinate improves on everything seen.
func skylineBy(points []Point, dom func(a, b Point) bool, key func(Point) (float64, float64)) []Point {
	s := append([]Point(nil), points...)
	sort.Slice(s, func(i, j int) bool {
		a0, a1 := key(s[i])
		b0, b1 := key(s[j])
		if a0 != b0 {
			return a0 < b0
		}
		return a1 < b1
	})
	var out []Point
	for _, p := range s {
		dominated := false
		for _, q := range out {
			if dom(q, p) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, p)
		}
	}
	return out
}

// BBS runs a branch-and-bound skyline over the TAR-tree using an existing
// best-first search (whose queue is ordered by a monotone function of
// (s0, s1), so a POI that pops undominated is on the skyline). POIs whose
// id is in exclude — the current top-k — are skipped and never dominate,
// producing exactly the skyline of the lower-ranked POIs.
func BBS(s *core.Search, exclude map[int64]bool) ([]Point, error) {
	var sky []Point
	for {
		el := s.Pop()
		if el == nil {
			return sky, nil
		}
		dominated := false
		for _, p := range sky {
			if covers(p, el.S0, el.S1) {
				dominated = true
				break
			}
		}
		if dominated {
			continue // prune the subtree (or skip the dominated POI)
		}
		if el.IsPOI() {
			r := s.Result(el)
			if exclude[r.POI.ID] {
				continue
			}
			sky = append(sky, Point{ID: r.POI.ID, S0: el.S0, S1: el.S1})
			continue
		}
		if err := s.Expand(el); err != nil {
			return nil, err
		}
	}
}
