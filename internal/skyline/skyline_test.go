package skyline

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"tartree/internal/core"
	"tartree/internal/geo"
	"tartree/internal/tia"
)

func TestDominates(t *testing.T) {
	a := Point{ID: 1, S0: 0.2, S1: 0.3}
	cases := []struct {
		b         Point
		dom, rdom bool
	}{
		{Point{ID: 2, S0: 0.3, S1: 0.4}, true, false},
		{Point{ID: 3, S0: 0.2, S1: 0.3}, false, false}, // equal: no strict edge
		{Point{ID: 4, S0: 0.2, S1: 0.4}, true, false},
		{Point{ID: 5, S0: 0.1, S1: 0.4}, false, false}, // incomparable
		{Point{ID: 6, S0: 0.1, S1: 0.2}, false, true},
	}
	for i, c := range cases {
		if got := a.Dominates(c.b); got != c.dom {
			t.Errorf("case %d: Dominates = %v, want %v", i, got, c.dom)
		}
		if got := a.DominatesReversed(c.b); got != c.rdom {
			t.Errorf("case %d: DominatesReversed = %v, want %v", i, got, c.rdom)
		}
	}
}

func bruteSkyline(pts []Point) []Point {
	var out []Point
	for _, p := range pts {
		dominated := false
		for _, q := range pts {
			if q.Dominates(p) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, p)
		}
	}
	return out
}

func sortPts(pts []Point) {
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].S0 != pts[j].S0 {
			return pts[i].S0 < pts[j].S0
		}
		return pts[i].ID < pts[j].ID
	})
}

func TestOfMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for trial := 0; trial < 50; trial++ {
		n := 1 + r.Intn(100)
		pts := make([]Point, n)
		for i := range pts {
			// Coarse grid so duplicates and ties happen.
			pts[i] = Point{ID: int64(i), S0: float64(r.Intn(12)) / 12, S1: float64(r.Intn(12)) / 12}
		}
		got := Of(pts)
		want := bruteSkyline(pts)
		// Ties at identical coordinates may be represented by either point;
		// compare coordinate multisets instead of IDs.
		if len(got) > len(want) {
			t.Fatalf("trial %d: skyline %d larger than brute %d", trial, len(got), len(want))
		}
		// Every brute point must be dominated-or-equal w.r.t. the result.
		for _, w := range want {
			ok := false
			for _, g := range got {
				if g.S0 == w.S0 && g.S1 == w.S1 {
					ok = true
					break
				}
				if g.Dominates(w) {
					ok = true
					break
				}
			}
			if !ok {
				t.Fatalf("trial %d: brute point %+v unaccounted", trial, w)
			}
		}
		// No result point may be dominated by any input point.
		for _, g := range got {
			for _, p := range pts {
				if p.Dominates(g) {
					t.Fatalf("trial %d: skyline point %+v dominated by %+v", trial, g, p)
				}
			}
		}
	}
}

func buildTree(t testing.TB, n int, seed int64) (*core.Tree, *rand.Rand) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	tr, err := core.NewTree(core.Options{
		World:       geo.Rect{Min: geo.Vector{0, 0}, Max: geo.Vector{100, 100}},
		Grouping:    core.TAR3D,
		EpochStart:  0,
		EpochLength: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= n; i++ {
		var hist []tia.Record
		// Heavy-tailed per-POI intensity, like the paper's LBSN data: most
		// POIs have tiny aggregates, a few have huge ones. Entry aggregate
		// bounds stay tight under such data, which is what gives the
		// TAR-tree (and BBS over it) its pruning power.
		scale := math.Pow(r.Float64(), -1.1)
		for ep := int64(0); ep < 15; ep++ {
			if r.Intn(3) == 0 {
				agg := int64(1 + scale*r.Float64())
				if agg > 500 {
					agg = 500
				}
				hist = append(hist, tia.Record{Ts: ep * 10, Te: ep*10 + 10, Agg: agg})
			}
		}
		if err := tr.InsertPOI(core.POI{ID: int64(i), X: r.Float64() * 100, Y: r.Float64() * 100}, hist); err != nil {
			t.Fatal(err)
		}
	}
	return tr, r
}

// TestBBSMatchesBruteForce: the BBS skyline over the TAR-tree equals the
// in-memory skyline over all POI score points, with and without exclusion.
func TestBBSMatchesBruteForce(t *testing.T) {
	tr, r := buildTree(t, 400, 9)
	for trial := 0; trial < 10; trial++ {
		q := core.Query{
			X: r.Float64() * 100, Y: r.Float64() * 100,
			Iq:     tia.Interval{Start: 0, End: 150},
			K:      5,
			Alpha0: 0.2 + 0.6*r.Float64(),
		}
		// All POI score points via the exact scorer.
		var pts []Point
		tr.POIs(func(p core.POI, total int64) bool {
			res, err := tr.ScorePOI(q, p.ID)
			if err != nil {
				t.Fatal(err)
			}
			pts = append(pts, Point{ID: p.ID, S0: res.S0, S1: res.S1})
			return true
		})
		exclude := map[int64]bool{}
		if trial%2 == 1 {
			// Exclude the top-k POIs, as the MWA does.
			res, _, err := tr.Query(q)
			if err != nil {
				t.Fatal(err)
			}
			for _, rr := range res {
				exclude[rr.POI.ID] = true
			}
		}
		var included []Point
		for _, p := range pts {
			if !exclude[p.ID] {
				included = append(included, p)
			}
		}
		want := bruteSkyline(included)
		var stats core.QueryStats
		s, err := tr.NewSearch(q, &stats, nil)
		if err != nil {
			t.Fatal(err)
		}
		got, err := BBS(s, exclude)
		if err != nil {
			t.Fatal(err)
		}
		sortPts(got)
		sortPts(want)
		if len(got) != len(want) {
			t.Fatalf("trial %d: BBS %d points, brute %d", trial, len(got), len(want))
		}
		for i := range got {
			if math.Abs(got[i].S0-want[i].S0) > 1e-12 || math.Abs(got[i].S1-want[i].S1) > 1e-12 {
				t.Fatalf("trial %d pos %d: %+v vs %+v", trial, i, got[i], want[i])
			}
		}
	}
}

// BBS must access fewer nodes than exhausting the whole tree.
func TestBBSPrunes(t *testing.T) {
	tr, _ := buildTree(t, 3000, 13)
	q := core.Query{X: 50, Y: 50, Iq: tia.Interval{Start: 0, End: 150}, K: 5, Alpha0: 0.3}
	var bbsStats core.QueryStats
	s, err := tr.NewSearch(q, &bbsStats, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BBS(s, nil); err != nil {
		t.Fatal(err)
	}
	leaves, internals := tr.NodeCount()
	if bbsStats.RTreeAccesses() >= leaves+internals {
		t.Errorf("BBS accessed %d nodes of %d total: no pruning", bbsStats.RTreeAccesses(), leaves+internals)
	}
}
