package tia

import (
	"encoding/binary"
	"fmt"
)

// Packed record encoding for snapshots: a TIA's sorted records compress to
// a varint stream exploiting that epochs are near-consecutive and short.
// Per record:
//
//	Ts   — first record: zigzag varint of the absolute value;
//	       later records: uvarint delta from the previous record's Ts
//	       (records are sorted strictly ascending, so the delta is > 0)
//	Te   — uvarint of Te − Ts (epochs have positive length)
//	Agg  — zigzag varint
//
// On the fixed epoch grids of the paper's datasets this packs a record into
// a few bytes instead of the 24 bytes of its struct form.

// AppendPacked appends the packed encoding of recs (sorted ascending by Ts,
// as Mem.Records returns them) to dst and returns the extended slice.
func AppendPacked(dst []byte, recs []Record) []byte {
	prev := int64(0)
	for i, r := range recs {
		if i == 0 {
			dst = binary.AppendVarint(dst, r.Ts)
		} else {
			dst = binary.AppendUvarint(dst, uint64(r.Ts-prev))
		}
		prev = r.Ts
		dst = binary.AppendUvarint(dst, uint64(r.Te-r.Ts))
		dst = binary.AppendVarint(dst, r.Agg)
	}
	return dst
}

// DecodePacked decodes n packed records from b, returning the records and
// the remaining bytes. Corrupt or truncated input yields an error, never a
// panic: every varint read is bounds-checked and the record slice grows
// incrementally, so a forged count cannot force a huge allocation.
func DecodePacked(b []byte, n int) ([]Record, []byte, error) {
	if n < 0 {
		return nil, nil, fmt.Errorf("tia: negative packed record count %d", n)
	}
	var recs []Record
	prev := int64(0)
	for i := 0; i < n; i++ {
		var ts int64
		if i == 0 {
			v, k := binary.Varint(b)
			if k <= 0 {
				return nil, nil, fmt.Errorf("tia: truncated packed Ts at record %d", i)
			}
			ts, b = v, b[k:]
		} else {
			d, k := binary.Uvarint(b)
			if k <= 0 {
				return nil, nil, fmt.Errorf("tia: truncated packed Ts delta at record %d", i)
			}
			if d == 0 || d > 1<<62 {
				return nil, nil, fmt.Errorf("tia: non-increasing packed Ts at record %d", i)
			}
			ts, b = prev+int64(d), b[k:]
		}
		prev = ts
		du, k := binary.Uvarint(b)
		if k <= 0 {
			return nil, nil, fmt.Errorf("tia: truncated packed Te at record %d", i)
		}
		if du == 0 || du > 1<<62 {
			return nil, nil, fmt.Errorf("tia: empty packed epoch at record %d", i)
		}
		b = b[k:]
		agg, k := binary.Varint(b)
		if k <= 0 {
			return nil, nil, fmt.Errorf("tia: truncated packed Agg at record %d", i)
		}
		b = b[k:]
		recs = append(recs, Record{Ts: ts, Te: ts + int64(du), Agg: agg})
	}
	return recs, b, nil
}
