package tia

import (
	"math/rand"
	"reflect"
	"testing"
)

func TestPackedRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	cases := [][]Record{
		nil,
		{{Ts: 0, Te: 10, Agg: 5}},
		{{Ts: -100, Te: -90, Agg: -3}, {Ts: 0, Te: 10, Agg: 0}, {Ts: 10, Te: 20, Agg: 1 << 40}},
	}
	// Random sorted histories.
	for trial := 0; trial < 20; trial++ {
		var recs []Record
		ts := int64(r.Intn(1000)) - 500
		for i := 0; i < r.Intn(50); i++ {
			le := int64(1 + r.Intn(100))
			recs = append(recs, Record{Ts: ts, Te: ts + le, Agg: int64(r.Intn(1000)) - 100})
			ts += le + int64(r.Intn(30))
		}
		cases = append(cases, recs)
	}
	for i, recs := range cases {
		b := AppendPacked(nil, recs)
		got, rest, err := DecodePacked(b, len(recs))
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if len(rest) != 0 {
			t.Fatalf("case %d: %d bytes left over", i, len(rest))
		}
		if len(recs) == 0 {
			if len(got) != 0 {
				t.Fatalf("case %d: decoded %d records from empty", i, len(got))
			}
			continue
		}
		if !reflect.DeepEqual(got, recs) {
			t.Fatalf("case %d: round trip mismatch\n%v\n%v", i, got, recs)
		}
	}
}

func TestPackedRejectsCorrupt(t *testing.T) {
	good := AppendPacked(nil, []Record{{Ts: 5, Te: 15, Agg: 9}, {Ts: 15, Te: 25, Agg: 2}})
	// Every truncation must error.
	for n := 0; n < len(good); n++ {
		if _, _, err := DecodePacked(good[:n], 2); err == nil {
			t.Fatalf("truncation at %d accepted", n)
		}
	}
	// A count beyond the data must error, not allocate.
	if _, _, err := DecodePacked(good, 1000000); err == nil {
		t.Fatal("oversized count accepted")
	}
	if _, _, err := DecodePacked(good, -1); err == nil {
		t.Fatal("negative count accepted")
	}
	// Zero Ts delta (non-increasing) must error.
	bad := AppendPacked(nil, []Record{{Ts: 5, Te: 15, Agg: 9}})
	bad = append(bad, 0) // delta 0
	bad = AppendPacked(bad, nil)
	bad = append(bad, 10, 1)
	if _, _, err := DecodePacked(bad, 2); err == nil {
		t.Fatal("zero Ts delta accepted")
	}
}
