// Package tia implements the temporal index on the aggregate (TIA) of the
// TAR-tree (Section 4.1 of the paper). A TIA belongs to one tree entry and
// stores one record ⟨ts, te, agg⟩ per epoch with a non-zero aggregate: the
// epoch's start time, end time and aggregate value. The TIA of a leaf entry
// stores the POI's own aggregates; the TIA of an internal entry stores, per
// epoch, the maximum aggregate among the TIAs in its child node.
//
// Three interchangeable backends are provided: an in-memory sorted slice,
// a disk-based B+-tree (the default; one small buffer pool per TIA, as in
// the paper's setup), and the multi-version B-tree the paper names.
package tia

import (
	"math"
	"sort"
	"sync/atomic"

	"tartree/internal/btree"
	"tartree/internal/mvbt"
	"tartree/internal/pagestore"
)

// BackendKind identifies a TIA backend for the probe counters.
type BackendKind int

const (
	// KindMem is the in-memory sorted-slice backend (also the mirrors).
	KindMem BackendKind = iota
	// KindBTree is the disk B+-tree backend (the default).
	KindBTree
	// KindMVBT is the multi-version B-tree backend.
	KindMVBT
	numKinds
)

// String implements fmt.Stringer with the metric-label spelling.
func (k BackendKind) String() string {
	switch k {
	case KindMem:
		return "mem"
	case KindBTree:
		return "btree"
	case KindMVBT:
		return "mvbt"
	}
	return "unknown"
}

// BackendKinds lists every backend kind.
func BackendKinds() []BackendKind { return []BackendKind{KindMem, KindBTree, KindMVBT} }

// probes counts aggregate probes (AggregateFunc calls) per backend kind,
// process-wide. One atomic add per probe keeps the accounting cheap enough
// for the hottest path; cmd/tarserve and cmd/tarbench export the totals as
// tia_probes_total{backend="..."} metrics.
var probes [numKinds]atomic.Int64

// ProbeCount returns the number of aggregate probes issued against the
// given backend kind since process start.
func ProbeCount(k BackendKind) int64 {
	if k < 0 || k >= numKinds {
		return 0
	}
	return probes[k].Load()
}

// Record is one epoch's aggregate: the half-open epoch [Ts, Te) and the
// aggregate value Agg accumulated during it.
type Record struct {
	Ts, Te, Agg int64
}

// Interval is a half-open query time interval [Start, End).
type Interval struct {
	Start, End int64
}

// Contains reports whether the record's epoch lies entirely inside iv.
func (iv Interval) Contains(r Record) bool { return iv.Start <= r.Ts && r.Te <= iv.End }

// Intersects reports whether the record's epoch overlaps iv.
func (iv Interval) Intersects(r Record) bool { return r.Ts < iv.End && iv.Start < r.Te }

// Semantics selects how records are matched against a query interval.
// Section 4.3 of the paper sums the records whose epoch is contained in
// the query interval; Section 3.1 describes intersection. Both are
// supported; Contained is the default everywhere.
type Semantics int

const (
	// Contained matches records whose epoch lies inside the interval.
	Contained Semantics = iota
	// Intersecting matches records whose epoch overlaps the interval.
	Intersecting
)

// Func combines the matching records' values into the temporal aggregate.
// Section 3.1 lists count, min, max, sum and average; count and sum are the
// same fold (each record already holds the epoch's count), and max is the
// other fold consistent with the TAR-tree's internal TIAs: an internal
// entry stores per-epoch maxima over a superset of any child's epochs, so
// both its interval sum and its interval maximum upper-bound every child's.
// Min and average lack that property (a sibling's small epoch value could
// undercut a child's minimum), so they would need a second, min-folding
// TIA per entry; they are intentionally not provided.
type Func int

const (
	// FuncSum adds the matching records' values (count/sum aggregates).
	FuncSum Func = iota
	// FuncMax takes the largest matching value (max aggregate: "the
	// busiest single epoch in the interval").
	FuncMax
)

// fold accumulates v into acc under f.
func (f Func) fold(acc, v int64) int64 {
	if f == FuncMax {
		if v > acc {
			return v
		}
		return acc
	}
	return acc + v
}

// Index is a single TIA.
//
// Implementations are not safe for concurrent mutation; the TAR-tree
// serializes maintenance per entry.
type Index interface {
	// Put inserts the record for the epoch starting at rec.Ts, overwriting
	// a previous record for the same epoch (internal entries overwrite when
	// a POI insertion raises the per-epoch maximum).
	Put(rec Record) error
	// Aggregate sums the Agg of all records matching iv under sem.
	Aggregate(iv Interval, sem Semantics) (int64, error)
	// AggregateFunc folds the matching records' values with f.
	AggregateFunc(iv Interval, sem Semantics, f Func) (int64, error)
	// AggregateAcct is AggregateFunc with the page accesses charged to a
	// query-local acct (which may be nil). Queries thread their own acct
	// here so per-query I/O accounting stays exact when many queries run
	// concurrently; backends without page traffic ignore it. Read-only
	// calls (Aggregate*, Visit) are safe from many goroutines at once.
	AggregateAcct(iv Interval, sem Semantics, f Func, acct *pagestore.IOAcct) (int64, error)
	// Visit iterates all records in ascending Ts order, stopping early when
	// fn returns false.
	Visit(fn func(Record) bool) error
	// Len returns the number of stored records.
	Len() int
	// Destroy releases any storage held by the index. The index must not be
	// used afterwards. It is called when an internal entry's TIA is rebuilt
	// after the R-tree regroups entries.
	Destroy() error
}

// Factory creates Indexes that share a storage substrate and aggregate
// their page-access statistics (the experiments report TIA accesses).
type Factory interface {
	New() (Index, error)
	// Stats returns combined page traffic of every index created so far.
	Stats() pagestore.Stats
	// Breakdown returns the same traffic attributed by (component, level).
	// Unlike Stats it walks every breakdown cell, so callers read it once
	// per query, not per probe. Breakdown().Total() == Stats() always.
	Breakdown() pagestore.IOBreakdown
	ResetStats()
	// SetBufferSlots changes the per-index buffer size for indexes created
	// afterwards (the collective-processing experiment uses zero slots).
	SetBufferSlots(slots int)
}

// BulkFactory is the optional fast path a Factory may implement: NewBulk
// builds an index from records already sorted by strictly ascending Ts in
// one bottom-up pass instead of per-record puts. The snapshot-v3 loader
// probes for it so a restart writes each TIA page exactly once.
type BulkFactory interface {
	NewBulk(recs []Record) (Index, error)
}

// spanTracker records the widest epoch seen, so intersection queries know
// how far left of the interval a relevant record can start.
type spanTracker struct {
	maxSpan int64
}

func (s *spanTracker) note(r Record) {
	if d := r.Te - r.Ts; d > s.maxSpan {
		s.maxSpan = d
	}
}

// scanLow returns the lowest Ts that could match iv under sem.
func (s *spanTracker) scanLow(iv Interval, sem Semantics) int64 {
	if sem == Contained {
		return iv.Start
	}
	lo := iv.Start - s.maxSpan
	if lo > iv.Start { // overflow guard
		lo = math.MinInt64
	}
	return lo
}

func match(r Record, iv Interval, sem Semantics) bool {
	if sem == Contained {
		return iv.Contains(r)
	}
	return iv.Intersects(r)
}

// ---------------------------------------------------------------------------
// In-memory backend

// Mem is an in-memory Index backed by a sorted slice. It is used for the
// in-memory mirrors the TAR-tree keeps for grouping decisions, and in tests.
type Mem struct {
	spanTracker
	recs []Record
}

// NewMem returns an empty in-memory index.
func NewMem() *Mem { return &Mem{} }

// NewMemFromSorted returns an in-memory index over records already sorted
// by strictly ascending Ts. The slice is copied.
func NewMemFromSorted(recs []Record) *Mem {
	m := &Mem{recs: append([]Record(nil), recs...)}
	for _, r := range recs {
		m.note(r)
	}
	return m
}

// Put implements Index.
func (m *Mem) Put(rec Record) error {
	m.note(rec)
	i := sort.Search(len(m.recs), func(i int) bool { return m.recs[i].Ts >= rec.Ts })
	if i < len(m.recs) && m.recs[i].Ts == rec.Ts {
		m.recs[i] = rec
		return nil
	}
	m.recs = append(m.recs, Record{})
	copy(m.recs[i+1:], m.recs[i:])
	m.recs[i] = rec
	return nil
}

// Aggregate implements Index.
func (m *Mem) Aggregate(iv Interval, sem Semantics) (int64, error) {
	return m.AggregateFunc(iv, sem, FuncSum)
}

// AggregateAcct implements Index; memory indexes have no page traffic, so
// the acct is ignored.
func (m *Mem) AggregateAcct(iv Interval, sem Semantics, f Func, _ *pagestore.IOAcct) (int64, error) {
	return m.AggregateFunc(iv, sem, f)
}

// AggregateFunc implements Index.
func (m *Mem) AggregateFunc(iv Interval, sem Semantics, f Func) (int64, error) {
	probes[KindMem].Add(1)
	lo := m.scanLow(iv, sem)
	i := sort.Search(len(m.recs), func(i int) bool { return m.recs[i].Ts >= lo })
	var acc int64
	for ; i < len(m.recs) && m.recs[i].Ts < iv.End; i++ {
		if match(m.recs[i], iv, sem) {
			acc = f.fold(acc, m.recs[i].Agg)
		}
	}
	return acc, nil
}

// Visit implements Index.
func (m *Mem) Visit(fn func(Record) bool) error {
	for _, r := range m.recs {
		if !fn(r) {
			return nil
		}
	}
	return nil
}

// Len implements Index.
func (m *Mem) Len() int { return len(m.recs) }

// Records exposes the sorted record slice. Callers must not modify it; the
// TAR-tree's grouping strategies use it for fast distribution distances.
func (m *Mem) Records() []Record { return m.recs }

// Total returns the sum of all aggregate values.
func (m *Mem) Total() int64 {
	var s int64
	for _, r := range m.recs {
		s += r.Agg
	}
	return s
}

// ManhattanRecords returns the L1 distance between two sorted record sets,
// treating missing epochs as zero. This is the aggregate-distribution
// distance of the paper's IND-agg grouping strategy (Section 5.1).
func ManhattanRecords(a, b []Record) int64 {
	var d int64
	i, j := 0, 0
	abs := func(x int64) int64 {
		if x < 0 {
			return -x
		}
		return x
	}
	for i < len(a) && j < len(b) {
		switch {
		case a[i].Ts == b[j].Ts:
			d += abs(a[i].Agg - b[j].Agg)
			i++
			j++
		case a[i].Ts < b[j].Ts:
			d += abs(a[i].Agg)
			i++
		default:
			d += abs(b[j].Agg)
			j++
		}
	}
	for ; i < len(a); i++ {
		d += abs(a[i].Agg)
	}
	for ; j < len(b); j++ {
		d += abs(b[j].Agg)
	}
	return d
}

// Destroy implements Index.
func (m *Mem) Destroy() error {
	m.recs = nil
	return nil
}

// MemFactory creates Mem indexes. Its stats are always zero: memory access
// is free in the paper's cost accounting.
type MemFactory struct{}

// NewMemFactory returns a factory of in-memory indexes.
func NewMemFactory() *MemFactory { return &MemFactory{} }

// New implements Factory.
func (*MemFactory) New() (Index, error) { return NewMem(), nil }

// NewBulk implements BulkFactory.
func (*MemFactory) NewBulk(recs []Record) (Index, error) { return NewMemFromSorted(recs), nil }

// Stats implements Factory.
func (*MemFactory) Stats() pagestore.Stats { return pagestore.Stats{} }

// Breakdown implements Factory: memory indexes produce no page traffic.
func (*MemFactory) Breakdown() pagestore.IOBreakdown { return pagestore.IOBreakdown{} }

// ResetStats implements Factory.
func (*MemFactory) ResetStats() {}

// SetBufferSlots implements Factory.
func (*MemFactory) SetBufferSlots(int) {}

// AttachSink is a no-op: memory indexes produce no page traffic.
func (*MemFactory) AttachSink(pagestore.Sink) {}

// ---------------------------------------------------------------------------
// B+-tree backend

// BTree is an Index stored in a disk-based B+-tree keyed by epoch start.
type BTree struct {
	spanTracker
	tree *btree.Tree
	buf  *pagestore.Buffer
}

// Put implements Index.
func (b *BTree) Put(rec Record) error {
	b.note(rec)
	return b.tree.Put(rec.Ts, btree.Value{rec.Te, rec.Agg})
}

// Aggregate implements Index.
func (b *BTree) Aggregate(iv Interval, sem Semantics) (int64, error) {
	return b.AggregateFunc(iv, sem, FuncSum)
}

// AggregateFunc implements Index.
func (b *BTree) AggregateFunc(iv Interval, sem Semantics, f Func) (int64, error) {
	return b.AggregateAcct(iv, sem, f, nil)
}

// AggregateAcct implements Index, charging the B+-tree page accesses of
// this probe to acct.
func (b *BTree) AggregateAcct(iv Interval, sem Semantics, f Func, acct *pagestore.IOAcct) (int64, error) {
	probes[KindBTree].Add(1)
	var acc int64
	err := b.tree.ScanAcct(b.scanLow(iv, sem), iv.End-1, acct, func(ts int64, v btree.Value) bool {
		if match(Record{Ts: ts, Te: v[0], Agg: v[1]}, iv, sem) {
			acc = f.fold(acc, v[1])
		}
		return true
	})
	return acc, err
}

// Visit implements Index.
func (b *BTree) Visit(fn func(Record) bool) error {
	return b.tree.Scan(math.MinInt64, math.MaxInt64, func(ts int64, v btree.Value) bool {
		return fn(Record{Ts: ts, Te: v[0], Agg: v[1]})
	})
}

// Len implements Index.
func (b *BTree) Len() int { return b.tree.Len() }

// Destroy implements Index.
func (b *BTree) Destroy() error { return b.tree.Destroy() }

// BTreeFactory creates B+-tree indexes sharing one page file; every index
// gets its own small buffer pool, matching the paper's "each TIA is
// assigned a maximum of 10 buffer slots".
type BTreeFactory struct {
	file     pagestore.File
	slots    int
	bufs     []*pagestore.Buffer
	sink     pagestore.AttrCounterSink // O(1) combined stats across all buffers
	base     pagestore.Stats           // totals captured at the last ResetStats
	attrBase pagestore.IOBreakdown     // breakdown captured at the last ResetStats
	extra    []pagestore.Sink          // attached observers (metrics registries)
}

// NewBTreeFactory creates a factory over an in-memory simulated disk with
// the given page size and per-index buffer slots.
func NewBTreeFactory(pageSize, slots int) *BTreeFactory {
	return NewBTreeFactoryWithFile(pagestore.NewMemFile(pageSize), slots)
}

// NewBTreeFactoryWithFile creates a factory over an existing page file.
func NewBTreeFactoryWithFile(f pagestore.File, slots int) *BTreeFactory {
	return &BTreeFactory{file: f, slots: slots}
}

// New implements Factory.
func (f *BTreeFactory) New() (Index, error) {
	buf := pagestore.NewBufferWithSinks(f.file, f.slots, append([]pagestore.Sink{&f.sink}, f.extra...)...)
	t, err := btree.New(buf)
	if err != nil {
		return nil, err
	}
	f.bufs = append(f.bufs, buf)
	return &BTree{tree: t, buf: buf}, nil
}

// NewBulk implements BulkFactory: the B+-tree is built bottom-up from the
// sorted records, one page write per node, instead of descending from the
// root once per record.
func (f *BTreeFactory) NewBulk(recs []Record) (Index, error) {
	buf := pagestore.NewBufferWithSinks(f.file, f.slots, append([]pagestore.Sink{&f.sink}, f.extra...)...)
	keys := make([]int64, len(recs))
	vals := make([]btree.Value, len(recs))
	for i, r := range recs {
		keys[i] = r.Ts
		vals[i] = btree.Value{r.Te, r.Agg}
	}
	t, err := btree.NewBulk(buf, keys, vals)
	if err != nil {
		return nil, err
	}
	f.bufs = append(f.bufs, buf)
	b := &BTree{tree: t, buf: buf}
	for _, r := range recs {
		b.note(r)
	}
	return b, nil
}

// AttachSink subscribes s to the page traffic of every buffer the factory
// has created or will create. core.NewTree uses it to publish buffer
// hit/miss/eviction rates into an obs registry.
func (f *BTreeFactory) AttachSink(s pagestore.Sink) {
	if s == nil {
		return
	}
	f.extra = append(f.extra, s)
	for _, b := range f.bufs {
		b.AddSink(s)
	}
}

// Stats implements Factory. It reads the shared counter sink, so it is
// O(1) no matter how many TIAs exist; the best-first search snapshots it
// around every entry score.
func (f *BTreeFactory) Stats() pagestore.Stats {
	return f.sink.Snapshot().Sub(f.base)
}

// Breakdown implements Factory: combined traffic attributed by
// (component, level) since the last ResetStats.
func (f *BTreeFactory) Breakdown() pagestore.IOBreakdown {
	return f.sink.Breakdown().Sub(f.attrBase)
}

// ResetStats implements Factory.
func (f *BTreeFactory) ResetStats() {
	f.base = f.sink.Snapshot()
	f.attrBase = f.sink.Breakdown()
}

// SetBufferSlots implements Factory. It also resizes existing buffers so an
// experiment can switch an entire tree between buffered and unbuffered.
func (f *BTreeFactory) SetBufferSlots(slots int) {
	f.slots = slots
	for _, b := range f.bufs {
		b.Resize(slots) //nolint:errcheck // resize of mem file cannot fail
	}
}

// ---------------------------------------------------------------------------
// Multi-version B-tree backend

// MVBT is an Index stored in a multi-version B-tree, the implementation the
// paper names. Records are inserted at monotonically increasing versions
// and queried at the current version.
type MVBT struct {
	spanTracker
	tree *mvbt.Tree
	buf  *pagestore.Buffer
	n    int
}

// Put implements Index.
func (m *MVBT) Put(rec Record) error {
	m.note(rec)
	v := m.tree.Now()
	if rec.Ts > v {
		v = rec.Ts
	}
	if _, ok, err := m.tree.Get(v, rec.Ts); err != nil {
		return err
	} else if ok {
		return m.tree.Update(v, rec.Ts, mvbt.Value{rec.Te, rec.Agg})
	}
	m.n++
	return m.tree.Insert(v, rec.Ts, mvbt.Value{rec.Te, rec.Agg})
}

// Aggregate implements Index.
func (m *MVBT) Aggregate(iv Interval, sem Semantics) (int64, error) {
	return m.AggregateFunc(iv, sem, FuncSum)
}

// AggregateFunc implements Index.
func (m *MVBT) AggregateFunc(iv Interval, sem Semantics, f Func) (int64, error) {
	return m.AggregateAcct(iv, sem, f, nil)
}

// AggregateAcct implements Index, charging the MVBT page accesses of this
// probe to acct.
func (m *MVBT) AggregateAcct(iv Interval, sem Semantics, f Func, acct *pagestore.IOAcct) (int64, error) {
	probes[KindMVBT].Add(1)
	var acc int64
	err := m.tree.ScanAtAcct(m.tree.Now(), m.scanLow(iv, sem), iv.End-1, acct, func(ts int64, v mvbt.Value) bool {
		if match(Record{Ts: ts, Te: v[0], Agg: v[1]}, iv, sem) {
			acc = f.fold(acc, v[1])
		}
		return true
	})
	return acc, err
}

// Visit implements Index.
func (m *MVBT) Visit(fn func(Record) bool) error {
	return m.tree.ScanAt(m.tree.Now(), math.MinInt64, math.MaxInt64, func(ts int64, v mvbt.Value) bool {
		return fn(Record{Ts: ts, Te: v[0], Agg: v[1]})
	})
}

// Len implements Index.
func (m *MVBT) Len() int { return m.n }

// Destroy implements Index.
func (m *MVBT) Destroy() error {
	// Historical MVBT nodes are shared with no free-list bookkeeping; we
	// simply drop the buffer. The factory's file reclaims space only when
	// it is closed, which matches how scratch MVBTs are used.
	m.buf.Drop()
	return nil
}

// MVBTFactory creates MVBT indexes sharing one page file.
type MVBTFactory struct {
	file     pagestore.File
	slots    int
	bufs     []*pagestore.Buffer
	sink     pagestore.AttrCounterSink
	base     pagestore.Stats
	attrBase pagestore.IOBreakdown
	extra    []pagestore.Sink
}

// NewMVBTFactory creates a factory over an in-memory simulated disk.
func NewMVBTFactory(pageSize, slots int) *MVBTFactory {
	return &MVBTFactory{file: pagestore.NewMemFile(pageSize), slots: slots}
}

// New implements Factory.
func (f *MVBTFactory) New() (Index, error) {
	buf := pagestore.NewBufferWithSinks(f.file, f.slots, append([]pagestore.Sink{&f.sink}, f.extra...)...)
	t, err := mvbt.New(buf)
	if err != nil {
		return nil, err
	}
	f.bufs = append(f.bufs, buf)
	return &MVBT{tree: t, buf: buf}, nil
}

// AttachSink subscribes s to the page traffic of every buffer the factory
// has created or will create.
func (f *MVBTFactory) AttachSink(s pagestore.Sink) {
	if s == nil {
		return
	}
	f.extra = append(f.extra, s)
	for _, b := range f.bufs {
		b.AddSink(s)
	}
}

// Stats implements Factory (O(1) via the shared sink).
func (f *MVBTFactory) Stats() pagestore.Stats {
	return f.sink.Snapshot().Sub(f.base)
}

// Breakdown implements Factory.
func (f *MVBTFactory) Breakdown() pagestore.IOBreakdown {
	return f.sink.Breakdown().Sub(f.attrBase)
}

// ResetStats implements Factory.
func (f *MVBTFactory) ResetStats() {
	f.base = f.sink.Snapshot()
	f.attrBase = f.sink.Breakdown()
}

// SetBufferSlots implements Factory.
func (f *MVBTFactory) SetBufferSlots(slots int) {
	f.slots = slots
	for _, b := range f.bufs {
		b.Resize(slots) //nolint:errcheck
	}
}

// MaxMerge stores into dst the per-epoch maximum of dst and src: for every
// epoch in src, dst's record becomes the larger aggregate. This is how an
// internal entry's TIA is maintained (Section 4.1: "the TIA of an internal
// entry stores the largest aggregate value of the TIAs in the child node
// for each epoch").
func MaxMerge(dst, src Index) error {
	var rs []Record
	if err := src.Visit(func(r Record) bool { rs = append(rs, r); return true }); err != nil {
		return err
	}
	var ds []Record
	if err := dst.Visit(func(r Record) bool { ds = append(ds, r); return true }); err != nil {
		return err
	}
	have := make(map[int64]int64, len(ds))
	for _, r := range ds {
		have[r.Ts] = r.Agg
	}
	for _, r := range rs {
		if cur, ok := have[r.Ts]; !ok || r.Agg > cur {
			if err := dst.Put(r); err != nil {
				return err
			}
		}
	}
	return nil
}
