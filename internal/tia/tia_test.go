package tia

import (
	"math/rand"
	"testing"

	"tartree/internal/pagestore"
)

// factories under test; each subtest runs against all backends.
func factories() map[string]Factory {
	return map[string]Factory{
		"mem":   NewMemFactory(),
		"btree": NewBTreeFactory(1024, 10),
		"mvbt":  NewMVBTFactory(1024, 10),
	}
}

func TestIntervalPredicates(t *testing.T) {
	r := Record{Ts: 10, Te: 20, Agg: 1}
	cases := []struct {
		iv                   Interval
		contains, intersects bool
	}{
		{Interval{10, 20}, true, true},
		{Interval{5, 25}, true, true},
		{Interval{10, 19}, false, true},
		{Interval{11, 20}, false, true},
		{Interval{0, 10}, false, false},  // touches at start, half-open
		{Interval{20, 30}, false, false}, // touches at end
		{Interval{15, 16}, false, true},  // inside the epoch
		{Interval{0, 5}, false, false},
	}
	for i, c := range cases {
		if got := c.iv.Contains(r); got != c.contains {
			t.Errorf("case %d: Contains = %v, want %v", i, got, c.contains)
		}
		if got := c.iv.Intersects(r); got != c.intersects {
			t.Errorf("case %d: Intersects = %v, want %v", i, got, c.intersects)
		}
	}
}

func TestPaperExampleAggregate(t *testing.T) {
	// Table 1 / Section 3.2: POI f has aggregates 3, 5, 4 over the three
	// epochs; over [t0, tc] the aggregate is 12. Use epochs of length 1.
	for name, f := range factories() {
		t.Run(name, func(t *testing.T) {
			idx, err := f.New()
			if err != nil {
				t.Fatal(err)
			}
			for i, agg := range []int64{3, 5, 4} {
				if err := idx.Put(Record{Ts: int64(i), Te: int64(i + 1), Agg: agg}); err != nil {
					t.Fatal(err)
				}
			}
			got, err := idx.Aggregate(Interval{0, 3}, Contained)
			if err != nil {
				t.Fatal(err)
			}
			if got != 12 {
				t.Errorf("aggregate over [t0,tc] = %d, want 12", got)
			}
			// Only the middle epoch is contained in [1, 2).
			if got, _ := idx.Aggregate(Interval{1, 2}, Contained); got != 5 {
				t.Errorf("aggregate over [t1,t2) = %d, want 5", got)
			}
			// Intersection over a partial window catches neighbours.
			if got, _ := idx.Aggregate(Interval{1, 2}, Intersecting); got != 5 {
				t.Errorf("intersecting over [1,2) = %d, want 5", got)
			}
			if got, _ := idx.Aggregate(Interval{0, 2}, Intersecting); got != 8 {
				t.Errorf("intersecting over [0,2) = %d, want 8", got)
			}
		})
	}
}

func TestOverwrite(t *testing.T) {
	for name, f := range factories() {
		t.Run(name, func(t *testing.T) {
			idx, _ := f.New()
			idx.Put(Record{Ts: 100, Te: 200, Agg: 3})
			idx.Put(Record{Ts: 100, Te: 200, Agg: 7})
			if idx.Len() != 1 {
				t.Fatalf("len = %d, want 1", idx.Len())
			}
			if got, _ := idx.Aggregate(Interval{0, 1000}, Contained); got != 7 {
				t.Errorf("aggregate = %d, want 7 (overwritten)", got)
			}
		})
	}
}

func TestVisitOrderAndEarlyStop(t *testing.T) {
	for name, f := range factories() {
		t.Run(name, func(t *testing.T) {
			idx, _ := f.New()
			// Insert out of order for the mem backend; disk backends get
			// ascending inserts in practice, but must cope regardless.
			order := []int64{50, 10, 30, 20, 40}
			if name == "mvbt" {
				// MVBT requires non-decreasing versions; feed ascending.
				order = []int64{10, 20, 30, 40, 50}
			}
			for _, ts := range order {
				idx.Put(Record{Ts: ts, Te: ts + 10, Agg: ts})
			}
			var got []int64
			idx.Visit(func(r Record) bool { got = append(got, r.Ts); return true })
			want := []int64{10, 20, 30, 40, 50}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("visit order = %v", got)
				}
			}
			n := 0
			idx.Visit(func(r Record) bool { n++; return n < 2 })
			if n != 2 {
				t.Errorf("early stop visited %d", n)
			}
		})
	}
}

// Property: Aggregate equals a brute-force sum over Visit, for random
// epoch layouts and random query intervals, under both semantics.
func TestAggregateMatchesBruteForce(t *testing.T) {
	for name, f := range factories() {
		t.Run(name, func(t *testing.T) {
			r := rand.New(rand.NewSource(11))
			for trial := 0; trial < 30; trial++ {
				idx, err := f.New()
				if err != nil {
					t.Fatal(err)
				}
				// Random consecutive epochs with random lengths; some zero
				// epochs skipped (non-zero aggregates only, like real TIAs).
				t0 := int64(r.Intn(100))
				ts := t0
				var recs []Record
				for i := 0; i < 50; i++ {
					te := ts + int64(1+r.Intn(20))
					if r.Intn(4) != 0 { // 3/4 of epochs have check-ins
						rec := Record{Ts: ts, Te: te, Agg: int64(1 + r.Intn(9))}
						recs = append(recs, rec)
						if err := idx.Put(rec); err != nil {
							t.Fatal(err)
						}
					}
					ts = te
				}
				for q := 0; q < 40; q++ {
					a := t0 - 10 + int64(r.Intn(int(ts-t0)+20))
					b := a + int64(r.Intn(200))
					iv := Interval{a, b}
					for _, sem := range []Semantics{Contained, Intersecting} {
						var want int64
						for _, rec := range recs {
							if match(rec, iv, sem) {
								want += rec.Agg
							}
						}
						got, err := idx.Aggregate(iv, sem)
						if err != nil {
							t.Fatal(err)
						}
						if got != want {
							t.Fatalf("%s trial %d iv=%v sem=%d: got %d want %d",
								name, trial, iv, sem, got, want)
						}
					}
				}
				idx.Destroy()
			}
		})
	}
}

func TestFactoryStats(t *testing.T) {
	f := NewBTreeFactory(512, 0) // unbuffered: every access is physical
	idx, err := f.New()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		idx.Put(Record{Ts: int64(i * 10), Te: int64(i*10 + 10), Agg: 1})
	}
	if f.Stats().PhysicalReads == 0 {
		t.Error("expected physical reads with zero buffer slots")
	}
	f.ResetStats()
	if s := f.Stats(); s.PhysicalReads != 0 || s.PhysicalWrites != 0 {
		t.Errorf("stats after reset = %+v", s)
	}
	if _, err := idx.Aggregate(Interval{0, 1000}, Contained); err != nil {
		t.Fatal(err)
	}
	if f.Stats().PhysicalReads == 0 {
		t.Error("aggregate should incur reads")
	}
}

func TestFactoryBufferedVsUnbuffered(t *testing.T) {
	run := func(slots int) int64 {
		f := NewBTreeFactory(1024, slots)
		idx, _ := f.New()
		for i := 0; i < 500; i++ {
			idx.Put(Record{Ts: int64(i * 10), Te: int64(i*10 + 10), Agg: 1})
		}
		f.ResetStats()
		for q := 0; q < 50; q++ {
			idx.Aggregate(Interval{0, 5000}, Contained)
		}
		return f.Stats().PhysicalReads
	}
	buffered, unbuffered := run(10), run(0)
	if buffered >= unbuffered {
		t.Errorf("buffered reads (%d) should be fewer than unbuffered (%d)", buffered, unbuffered)
	}
}

func TestSetBufferSlots(t *testing.T) {
	f := NewBTreeFactory(1024, 10)
	idx, _ := f.New()
	for i := 0; i < 200; i++ {
		idx.Put(Record{Ts: int64(i * 10), Te: int64(i*10 + 10), Agg: 1})
	}
	f.SetBufferSlots(0)
	f.ResetStats()
	idx.Aggregate(Interval{0, 100}, Contained)
	if f.Stats().PhysicalReads == 0 {
		t.Error("after SetBufferSlots(0) every read should be physical")
	}
}

func TestMaxMerge(t *testing.T) {
	dst, src := NewMem(), NewMem()
	// Paper's example from Section 4.1: children {⟨t0,t1,2⟩,⟨t1,t2,2⟩,⟨t2,*,2⟩}
	// and {⟨t0,t1,2⟩,⟨t1,t2,3⟩,⟨t2,*,1⟩} give parent {2, 3, 2}.
	for _, r := range []Record{{0, 1, 2}, {1, 2, 2}, {2, 3, 2}} {
		dst.Put(r)
	}
	for _, r := range []Record{{0, 1, 2}, {1, 2, 3}, {2, 3, 1}} {
		src.Put(r)
	}
	if err := MaxMerge(dst, src); err != nil {
		t.Fatal(err)
	}
	var got []int64
	dst.Visit(func(r Record) bool { got = append(got, r.Agg); return true })
	want := []int64{2, 3, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("merged = %v, want %v", got, want)
		}
	}
	// Merging an epoch missing from dst adds it.
	src2 := NewMem()
	src2.Put(Record{Ts: 5, Te: 6, Agg: 9})
	MaxMerge(dst, src2)
	if dst.Len() != 4 {
		t.Errorf("len after merge = %d, want 4", dst.Len())
	}
}

func TestDestroyMem(t *testing.T) {
	m := NewMem()
	m.Put(Record{0, 1, 5})
	if err := m.Destroy(); err != nil {
		t.Fatal(err)
	}
	if m.Len() != 0 {
		t.Error("destroy should clear records")
	}
}

func TestAggregateFuncMax(t *testing.T) {
	for name, f := range factories() {
		t.Run(name, func(t *testing.T) {
			idx, _ := f.New()
			for i, agg := range []int64{3, 9, 4, 7} {
				idx.Put(Record{Ts: int64(i * 10), Te: int64(i*10 + 10), Agg: agg})
			}
			if got, _ := idx.AggregateFunc(Interval{Start: 0, End: 40}, Contained, FuncMax); got != 9 {
				t.Errorf("max over all = %d, want 9", got)
			}
			if got, _ := idx.AggregateFunc(Interval{Start: 20, End: 40}, Contained, FuncMax); got != 7 {
				t.Errorf("max over tail = %d, want 7", got)
			}
			// Empty match: max of nothing is 0.
			if got, _ := idx.AggregateFunc(Interval{Start: 100, End: 200}, Contained, FuncMax); got != 0 {
				t.Errorf("empty max = %d", got)
			}
			// Sum via AggregateFunc equals Aggregate.
			s1, _ := idx.AggregateFunc(Interval{Start: 0, End: 40}, Contained, FuncSum)
			s2, _ := idx.Aggregate(Interval{Start: 0, End: 40}, Contained)
			if s1 != s2 || s1 != 23 {
				t.Errorf("sum = %d/%d, want 23", s1, s2)
			}
		})
	}
}

// TestProbeCountsPerBackend checks that every backend's AggregateFunc
// increments its own probe counter (the per-backend totals exported as
// tia_probes_total metrics).
func TestProbeCountsPerBackend(t *testing.T) {
	iv := Interval{Start: 0, End: 100}
	backends := []struct {
		kind BackendKind
		mk   func() (Index, error)
	}{
		{KindMem, func() (Index, error) { return NewMem(), nil }},
		{KindBTree, NewBTreeFactory(256, 4).New},
		{KindMVBT, NewMVBTFactory(1024, 4).New},
	}
	for _, b := range backends {
		idx, err := b.mk()
		if err != nil {
			t.Fatal(err)
		}
		if err := idx.Put(Record{Ts: 10, Te: 20, Agg: 3}); err != nil {
			t.Fatal(err)
		}
		before := ProbeCount(b.kind)
		for i := 0; i < 3; i++ {
			if _, err := idx.AggregateFunc(iv, Contained, FuncSum); err != nil {
				t.Fatal(err)
			}
		}
		if got := ProbeCount(b.kind) - before; got != 3 {
			t.Errorf("%v: probe delta = %d, want 3", b.kind, got)
		}
	}
	if ProbeCount(BackendKind(99)) != 0 {
		t.Error("out-of-range kind should read 0")
	}
}

// TestFactoryAttachSink checks that attached sinks observe buffers created
// both before and after the attachment.
func TestFactoryAttachSink(t *testing.T) {
	f := NewBTreeFactory(256, 4)
	early, err := f.New()
	if err != nil {
		t.Fatal(err)
	}
	var sink pagestore.CounterSink
	f.AttachSink(&sink)
	late, err := f.New()
	if err != nil {
		t.Fatal(err)
	}
	for _, idx := range []Index{early, late} {
		if err := idx.Put(Record{Ts: 0, Te: 10, Agg: 1}); err != nil {
			t.Fatal(err)
		}
		if _, err := idx.Aggregate(Interval{Start: 0, End: 10}, Contained); err != nil {
			t.Fatal(err)
		}
	}
	if got := sink.Snapshot(); got.LogicalReads == 0 || got.LogicalWrites == 0 {
		t.Errorf("attached sink saw no traffic: %+v", got)
	}
}

// TestBTreeFactoryNewBulk: the bulk-built disk TIA must answer exactly like
// one fed the same records through Put.
func TestBTreeFactoryNewBulk(t *testing.T) {
	f := NewBTreeFactory(256, 10)
	recs := make([]Record, 300)
	ts := int64(-1000)
	for i := range recs {
		ts += int64(1 + i%7)
		recs[i] = Record{Ts: ts, Te: ts + 5, Agg: int64(i % 13)}
	}
	bulk, err := f.NewBulk(recs)
	if err != nil {
		t.Fatal(err)
	}
	put, err := f.New()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := put.Put(r); err != nil {
			t.Fatal(err)
		}
	}
	if bulk.Len() != put.Len() {
		t.Fatalf("len %d != %d", bulk.Len(), put.Len())
	}
	for _, sem := range []Semantics{Contained, Intersecting} {
		for _, iv := range []Interval{{-1000, 2000}, {0, 100}, {recs[10].Ts, recs[200].Te}} {
			a, err := bulk.Aggregate(iv, sem)
			if err != nil {
				t.Fatal(err)
			}
			b, err := put.Aggregate(iv, sem)
			if err != nil {
				t.Fatal(err)
			}
			if a != b {
				t.Fatalf("sem %v iv %v: %d != %d", sem, iv, a, b)
			}
		}
	}
	// Mutable after bulk build (internal entries overwrite epochs).
	if err := bulk.Put(Record{Ts: recs[0].Ts, Te: recs[0].Te, Agg: 99}); err != nil {
		t.Fatal(err)
	}
	v, err := bulk.Aggregate(Interval{recs[0].Ts, recs[0].Te}, Contained)
	if err != nil {
		t.Fatal(err)
	}
	if v != 99 {
		t.Fatalf("overwrite lost: %d", v)
	}
	// Empty bulk build works.
	empty, err := f.NewBulk(nil)
	if err != nil {
		t.Fatal(err)
	}
	if empty.Len() != 0 {
		t.Fatalf("empty len %d", empty.Len())
	}
}
