package wal

import (
	"fmt"
	"testing"
)

// crashWorkload drives a store through ingest + flush + checkpoint until it
// finishes or the FaultFS kills it. It returns how many corpus records were
// acknowledged durable before the crash. The workload is single-writer so
// acknowledged record i carries LSN i+1, which lets the harness resume the
// corpus precisely after recovery.
func crashWorkload(fs FS, cs []CheckIn) (acked int) {
	s, err := OpenStore(fs, newBaseTree, StoreOptions{SegmentBytes: 24 * frameSize})
	if err != nil {
		return 0
	}
	defer s.Close()
	for i, c := range cs {
		if _, err := s.Ingest([]CheckIn{c}); err != nil {
			return i
		}
		acked = i + 1
		if acked%97 == 0 {
			// Flush epochs well behind the stream head (pure tree work).
			if err := s.FlushEpochs(c.At - 2*testEpochLn); err != nil {
				return acked
			}
		}
		if acked%151 == 0 {
			if _, err := s.Checkpoint(); err != nil {
				return acked
			}
		}
	}
	s.Checkpoint()
	return acked
}

// TestCrashRecoveryKillPoints is the fault-injection proof of the WAL's
// durability contract: crash the store at budgets aimed at every I/O class —
// mid-append (torn frame), mid-fsync, mid-segment-rotation, mid-checkpoint
// (tmp write, rename, old-file removal), mid-truncate — then recover on a
// clean FS, resume the rest of the corpus, and require query results
// identical to a never-crashed reference. No acknowledged check-in may be
// lost at any crash point.
func TestCrashRecoveryKillPoints(t *testing.T) {
	cs := corpus(500, 21)
	horizon := int64(500*3 + 2*testEpochLn)
	ref := referenceTree(t, cs, horizon)

	// Counting run: record the unit offset of every operation class.
	countDir := t.TempDir()
	countFS, err := NewDirFS(countDir)
	if err != nil {
		t.Fatal(err)
	}
	counter := NewFaultFS(countFS, -1)
	if got := crashWorkload(counter, cs); got != len(cs) {
		t.Fatalf("counting run acked %d of %d", got, len(cs))
	}
	trace := counter.Trace()
	if len(trace) == 0 {
		t.Fatal("empty fault trace")
	}

	// Aim crash budgets at the first, middle and last occurrence of every
	// class, both at the operation's start and torn partway into it.
	byOp := make(map[Op][]OpPoint)
	for _, p := range trace {
		byOp[p.Op] = append(byOp[p.Op], p)
	}
	total := counter.Used()
	seen := make(map[int64]bool)
	var budgets []int64
	for op, points := range byOp {
		picks := []OpPoint{points[0], points[len(points)/2], points[len(points)-1]}
		for _, p := range picks {
			for _, b := range []int64{p.Used, p.Used + 13} {
				// A budget at or past the workload's total I/O never fires.
				if b >= 0 && b < total && !seen[b] {
					seen[b] = true
					budgets = append(budgets, b)
				}
			}
		}
		if len(points) < 3 {
			t.Logf("op %s hit only %d times", op, len(points))
		}
	}
	wantOps := []Op{OpWrite, OpSync, OpCreate, OpRemove, OpRename, OpSyncDir}
	for _, op := range wantOps {
		if len(byOp[op]) == 0 {
			t.Errorf("workload never exercised op class %q", op)
		}
	}

	for _, budget := range budgets {
		budget := budget
		t.Run(fmt.Sprintf("budget=%d", budget), func(t *testing.T) {
			t.Parallel()
			dir := t.TempDir()
			dirFS, err := NewDirFS(dir)
			if err != nil {
				t.Fatal(err)
			}
			faulty := NewFaultFS(dirFS, budget)
			acked := crashWorkload(faulty, cs)
			if !faulty.Crashed() {
				t.Fatalf("budget %d did not crash the workload", budget)
			}

			// "Reboot": recover on the plain FS over the surviving files.
			s, err := OpenStore(dirFS, newBaseTree, StoreOptions{NoSync: true})
			if err != nil {
				t.Fatalf("recovery failed after crash at budget %d: %v", budget, err)
			}
			defer s.Close()
			applied := int(s.AppliedLSN())
			if acked > applied {
				t.Fatalf("LOST %d acknowledged check-ins: acked %d, recovered %d",
					acked-applied, acked, applied)
			}
			if applied > len(cs) {
				t.Fatalf("recovered %d records from a %d-record corpus", applied, len(cs))
			}
			// Resume the stream where the durable prefix ends (records past
			// acked but on disk were simply un-acknowledged; replaying them
			// from the corpus would double-count).
			for _, c := range cs[applied:] {
				if _, err := s.Ingest([]CheckIn{c}); err != nil {
					t.Fatal(err)
				}
			}
			if err := s.FlushEpochs(horizon); err != nil {
				t.Fatal(err)
			}
			assertTreesAgree(t, s, ref, horizon)
		})
	}
	t.Logf("%d kill points across %d op classes", len(budgets), len(byOp))
}

// TestCrashDuringRecoveryCheckpointing crashes a second time while the
// recovered store is checkpointing, then recovers again — recovery must be
// idempotent and never regress the durable prefix.
func TestCrashDoubleFault(t *testing.T) {
	cs := corpus(300, 22)
	horizon := int64(300*3 + 2*testEpochLn)
	ref := referenceTree(t, cs, horizon)

	dir := t.TempDir()
	dirFS, err := NewDirFS(dir)
	if err != nil {
		t.Fatal(err)
	}
	// First crash mid-run.
	first := NewFaultFS(dirFS, 2500)
	acked := crashWorkload(first, cs)
	if !first.Crashed() {
		t.Skip("budget too large for this corpus")
	}

	// Second run recovers, continues, crashes again a little later.
	second := NewFaultFS(dirFS, 4000)
	s2, err := OpenStore(second, newBaseTree, StoreOptions{SegmentBytes: 24 * frameSize})
	var acked2 int
	if err == nil {
		acked2 = int(s2.AppliedLSN())
		for _, c := range cs[acked2:] {
			if _, err := s2.Ingest([]CheckIn{c}); err != nil {
				break
			}
			acked2++
			if acked2%131 == 0 {
				if _, err := s2.Checkpoint(); err != nil {
					break
				}
			}
		}
		s2.Close()
	}
	if acked2 < acked {
		// The second run recovered everything the first acked before its own
		// crash, so its ack watermark can only move forward.
		t.Fatalf("second run regressed: acked %d < first run's %d", acked2, acked)
	}

	// Final recovery on the healthy FS.
	s3, err := OpenStore(dirFS, newBaseTree, StoreOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	applied := int(s3.AppliedLSN())
	if acked2 > applied {
		t.Fatalf("lost %d acknowledged check-ins across double fault", acked2-applied)
	}
	for _, c := range cs[applied:] {
		if _, err := s3.Ingest([]CheckIn{c}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s3.FlushEpochs(horizon); err != nil {
		t.Fatal(err)
	}
	assertTreesAgree(t, s3, ref, horizon)
}
