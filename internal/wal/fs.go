package wal

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// FS is the byte-oriented durable directory under a WAL: segment files,
// checkpoint snapshots, and the directory metadata that makes creates,
// renames and removes themselves durable. It is deliberately tiny so tests
// can interpose fault injection (FaultFS) and simulated latency (SlowFS) in
// the style of pagestore's File wrappers.
//
// Implementations must be safe for concurrent use by the committer
// goroutine and the checkpointer.
type FS interface {
	// Create creates (truncating) a file open for appending.
	Create(name string) (File, error)
	// Open opens a file for sequential reading.
	Open(name string) (io.ReadCloser, error)
	// List returns the file names in the directory, sorted.
	List() ([]string, error)
	// Size returns the byte size of a file.
	Size(name string) (int64, error)
	// Remove deletes a file.
	Remove(name string) error
	// Rename atomically replaces newname with oldname.
	Rename(oldname, newname string) error
	// Truncate shortens a file to size bytes (tail repair after a torn
	// write).
	Truncate(name string, size int64) error
	// SyncDir makes preceding creates, renames and removes durable.
	SyncDir() error
}

// File is one append-only file under an FS.
type File interface {
	io.Writer
	// Sync makes every preceding Write durable.
	Sync() error
	Close() error
}

// DirFS is the operating-system FS rooted at one directory.
type DirFS struct {
	dir string
}

// NewDirFS returns an FS over dir, creating the directory if needed.
func NewDirFS(dir string) (*DirFS, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &DirFS{dir: dir}, nil
}

// Dir returns the root directory.
func (fs *DirFS) Dir() string { return fs.dir }

// Create implements FS.
func (fs *DirFS) Create(name string) (File, error) {
	return os.OpenFile(filepath.Join(fs.dir, name), os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
}

// Open implements FS.
func (fs *DirFS) Open(name string) (io.ReadCloser, error) {
	return os.Open(filepath.Join(fs.dir, name))
}

// List implements FS.
func (fs *DirFS) List() ([]string, error) {
	ents, err := os.ReadDir(fs.dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// Size implements FS.
func (fs *DirFS) Size(name string) (int64, error) {
	st, err := os.Stat(filepath.Join(fs.dir, name))
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

// Remove implements FS.
func (fs *DirFS) Remove(name string) error {
	return os.Remove(filepath.Join(fs.dir, name))
}

// Rename implements FS.
func (fs *DirFS) Rename(oldname, newname string) error {
	return os.Rename(filepath.Join(fs.dir, oldname), filepath.Join(fs.dir, newname))
}

// Truncate implements FS.
func (fs *DirFS) Truncate(name string, size int64) error {
	return os.Truncate(filepath.Join(fs.dir, name), size)
}

// SyncDir implements FS.
func (fs *DirFS) SyncDir() error {
	d, err := os.Open(fs.dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// SlowFS wraps an FS so every File.Sync takes at least the given delay —
// the WAL-side analog of pagestore.SlowFile, modeling a disk whose fsync
// dominates the write path. Group-commit benchmarks use it: with a slow
// fsync, coalescing many appends per sync is the whole game.
type SlowFS struct {
	FS
	SyncDelay time.Duration
}

// Create implements FS.
func (fs *SlowFS) Create(name string) (File, error) {
	f, err := fs.FS.Create(name)
	if err != nil {
		return nil, err
	}
	return &slowFile{File: f, delay: fs.SyncDelay}, nil
}

type slowFile struct {
	File
	delay time.Duration
}

func (f *slowFile) Sync() error {
	if f.delay > 0 {
		time.Sleep(f.delay)
	}
	return f.File.Sync()
}

// ErrCrashed is returned by every FaultFS operation after the injected
// crash point has been reached.
var ErrCrashed = errors.New("wal: injected crash")

// Op identifies one class of FaultFS operation for kill-point coverage
// reporting.
type Op string

// The operation classes a FaultFS distinguishes.
const (
	OpWrite    Op = "write"
	OpSync     Op = "sync"
	OpCreate   Op = "create"
	OpRemove   Op = "remove"
	OpRename   Op = "rename"
	OpTruncate Op = "truncate"
	OpSyncDir  Op = "syncdir"
)

// FaultFS wraps an FS with a crash budget measured in units: every written
// byte costs one unit and every metadata operation (sync, create, remove,
// rename, truncate, directory sync) costs one unit. When the budget runs
// out the FS "crashes": the operation that crossed the line fails — a Write
// first persists only the bytes the budget still covered, producing a torn
// frame — and every subsequent operation returns ErrCrashed. Reads are
// unaffected, mirroring a machine that lost power and rebooted.
//
// A FaultFS with a negative budget never crashes but still counts units and
// records the unit offset of each operation class, which the kill-point
// harness uses to aim crash budgets at every class (mid-append, mid-fsync,
// mid-checkpoint-rename, mid-truncate, ...).
type FaultFS struct {
	inner FS

	mu      sync.Mutex
	budget  int64 // remaining units; <0 = unlimited (counting mode)
	used    int64
	crashed bool
	trace   []OpPoint
}

// OpPoint records that an operation of class Op began once used units had
// been consumed.
type OpPoint struct {
	Op   Op
	Used int64
}

// NewFaultFS wraps inner with the given crash budget; budget < 0 counts
// without ever crashing.
func NewFaultFS(inner FS, budget int64) *FaultFS {
	return &FaultFS{inner: inner, budget: budget}
}

// Used returns the units consumed so far.
func (fs *FaultFS) Used() int64 {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.used
}

// Crashed reports whether the crash point has been reached.
func (fs *FaultFS) Crashed() bool {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.crashed
}

// Trace returns the recorded operation points (counting mode).
func (fs *FaultFS) Trace() []OpPoint {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return append([]OpPoint(nil), fs.trace...)
}

// spend consumes up to want units for an operation of class op. It returns
// how many units the operation may still use (for writes: how many bytes to
// persist) and whether the operation survives the budget.
func (fs *FaultFS) spend(op Op, want int64) (allowed int64, ok bool) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.crashed {
		return 0, false
	}
	fs.trace = append(fs.trace, OpPoint{Op: op, Used: fs.used})
	if fs.budget < 0 {
		fs.used += want
		return want, true
	}
	remaining := fs.budget - fs.used
	if remaining >= want {
		fs.used += want
		return want, true
	}
	// The budget runs out inside this operation: crash, persisting only
	// what it still covered.
	fs.crashed = true
	if remaining < 0 {
		remaining = 0
	}
	fs.used += remaining
	return remaining, false
}

// Create implements FS.
func (fs *FaultFS) Create(name string) (File, error) {
	if _, ok := fs.spend(OpCreate, 1); !ok {
		return nil, ErrCrashed
	}
	f, err := fs.inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: fs, inner: f}, nil
}

// Open implements FS (reads never crash).
func (fs *FaultFS) Open(name string) (io.ReadCloser, error) { return fs.inner.Open(name) }

// List implements FS.
func (fs *FaultFS) List() ([]string, error) { return fs.inner.List() }

// Size implements FS.
func (fs *FaultFS) Size(name string) (int64, error) { return fs.inner.Size(name) }

// Remove implements FS.
func (fs *FaultFS) Remove(name string) error {
	if _, ok := fs.spend(OpRemove, 1); !ok {
		return ErrCrashed
	}
	return fs.inner.Remove(name)
}

// Rename implements FS.
func (fs *FaultFS) Rename(oldname, newname string) error {
	if _, ok := fs.spend(OpRename, 1); !ok {
		return ErrCrashed
	}
	return fs.inner.Rename(oldname, newname)
}

// Truncate implements FS.
func (fs *FaultFS) Truncate(name string, size int64) error {
	if _, ok := fs.spend(OpTruncate, 1); !ok {
		return ErrCrashed
	}
	return fs.inner.Truncate(name, size)
}

// SyncDir implements FS.
func (fs *FaultFS) SyncDir() error {
	if _, ok := fs.spend(OpSyncDir, 1); !ok {
		return ErrCrashed
	}
	return fs.inner.SyncDir()
}

type faultFile struct {
	fs    *FaultFS
	inner File
}

// Write persists a torn prefix when the crash budget runs out mid-write.
func (f *faultFile) Write(p []byte) (int, error) {
	allowed, ok := f.fs.spend(OpWrite, int64(len(p)))
	if !ok {
		if allowed > 0 {
			f.inner.Write(p[:allowed]) // torn write: best effort, then dead
		}
		return 0, ErrCrashed
	}
	return f.inner.Write(p)
}

func (f *faultFile) Sync() error {
	if _, ok := f.fs.spend(OpSync, 1); !ok {
		return ErrCrashed
	}
	return f.inner.Sync()
}

func (f *faultFile) Close() error { return f.inner.Close() }

// segmentName formats the canonical segment file name for a first LSN.
func segmentName(firstLSN uint64) string {
	return fmt.Sprintf("wal-%016d.seg", firstLSN)
}

// parseSegmentName extracts the first LSN from a segment file name.
func parseSegmentName(name string) (uint64, bool) {
	var lsn uint64
	if n, err := fmt.Sscanf(name, "wal-%016d.seg", &lsn); n != 1 || err != nil {
		return 0, false
	}
	if name != segmentName(lsn) {
		return 0, false
	}
	return lsn, true
}
