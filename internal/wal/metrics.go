package wal

import (
	"time"

	"tartree/internal/obs"
)

// batchBuckets sizes the batch-records histogram: powers of two, because
// group-commit batch sizes grow geometrically with fsync latency.
var batchBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}

// Metrics publishes the WAL's counters and latency histograms into an obs
// registry. A nil *Metrics is valid and records nothing, so the Log never
// branches on whether observability is wired up.
type Metrics struct {
	appends       *obs.Counter   // tartree_wal_appends_total
	records       *obs.Counter   // tartree_wal_records_total
	fsyncs        *obs.Counter   // tartree_wal_fsyncs_total
	batches       *obs.Counter   // tartree_wal_batches_total
	rotations     *obs.Counter   // tartree_wal_segment_rotations_total
	deleted       *obs.Counter   // tartree_wal_segments_deleted_total
	replayRecords *obs.Counter   // tartree_wal_replayed_records_total
	replaySkipped *obs.Counter   // tartree_wal_replay_skipped_total
	tornBytes     *obs.Counter   // tartree_wal_torn_bytes_truncated_total
	checkpoints   *obs.Counter   // tartree_wal_checkpoints_total
	segments      *obs.Gauge     // tartree_wal_segments
	appendLat     *obs.Histogram // tartree_wal_append_latency_seconds
	fsyncLat      *obs.Histogram // tartree_wal_fsync_latency_seconds
	fsyncStallLat *obs.Histogram // tartree_wal_fsync_stall_seconds
	checkpointLat *obs.Histogram // tartree_wal_checkpoint_duration_seconds
	batchRecords  *obs.Histogram // tartree_wal_batch_records
}

// NewMetrics registers the WAL metric family in reg. A nil registry yields a
// nil *Metrics, which every method accepts.
func NewMetrics(reg *obs.Registry) *Metrics {
	if reg == nil {
		return nil
	}
	return &Metrics{
		appends:       reg.Counter("tartree_wal_appends_total"),
		records:       reg.Counter("tartree_wal_records_total"),
		fsyncs:        reg.Counter("tartree_wal_fsyncs_total"),
		batches:       reg.Counter("tartree_wal_batches_total"),
		rotations:     reg.Counter("tartree_wal_segment_rotations_total"),
		deleted:       reg.Counter("tartree_wal_segments_deleted_total"),
		replayRecords: reg.Counter("tartree_wal_replayed_records_total"),
		replaySkipped: reg.Counter("tartree_wal_replay_skipped_total"),
		tornBytes:     reg.Counter("tartree_wal_torn_bytes_truncated_total"),
		checkpoints:   reg.Counter("tartree_wal_checkpoints_total"),
		segments:      reg.Gauge("tartree_wal_segments"),
		appendLat:     reg.Histogram("tartree_wal_append_latency_seconds", nil),
		fsyncLat:      reg.Histogram("tartree_wal_fsync_latency_seconds", nil),
		fsyncStallLat: reg.Histogram("tartree_wal_fsync_stall_seconds", nil),
		checkpointLat: reg.Histogram("tartree_wal_checkpoint_duration_seconds", nil),
		batchRecords:  reg.Histogram("tartree_wal_batch_records", batchBuckets),
	}
}

func (m *Metrics) appendDone(records int, d time.Duration) {
	if m == nil {
		return
	}
	m.appends.Inc()
	m.records.Add(int64(records))
	m.appendLat.Observe(d.Seconds())
}

func (m *Metrics) fsyncDone(d time.Duration) {
	if m == nil {
		return
	}
	m.fsyncs.Inc()
	m.fsyncLat.Observe(d.Seconds())
}

// fsyncStall records how long one append request sat in the commit queue
// before its batch started — the price of riding someone else's fsync.
func (m *Metrics) fsyncStall(d time.Duration) {
	if m == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	m.fsyncStallLat.Observe(d.Seconds())
}

func (m *Metrics) batchDone(appends int, records int64) {
	if m == nil {
		return
	}
	m.batches.Inc()
	m.batchRecords.Observe(float64(records))
}

func (m *Metrics) rotated() {
	if m == nil {
		return
	}
	m.rotations.Inc()
}

func (m *Metrics) segmentDeleted() {
	if m == nil {
		return
	}
	m.deleted.Inc()
}

func (m *Metrics) setSegments(n int) {
	if m == nil {
		return
	}
	m.segments.Set(float64(n))
}

func (m *Metrics) replayed(s *ReplayStats) {
	if m == nil {
		return
	}
	m.replayRecords.Add(s.Records)
	m.replaySkipped.Add(s.Skipped)
	m.tornBytes.Add(s.TruncatedBytes)
}

func (m *Metrics) checkpointDone(d time.Duration) {
	if m == nil {
		return
	}
	m.checkpoints.Inc()
	m.checkpointLat.Observe(d.Seconds())
}
