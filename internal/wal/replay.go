package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"strings"
)

// ErrCorrupt reports unrecoverable log damage: a bad frame in a segment
// that is not the final one, a segment header that doesn't match its file
// name, or a gap in the LSN sequence. A torn tail on the final segment is
// NOT corruption — recovery repairs it by truncating.
var ErrCorrupt = errors.New("wal: corrupt log")

// recover scans the on-disk segments, replays records with LSN > after
// through apply, repairs a torn tail, and positions nextLSN. Called once
// from OpenLog before the committer starts.
func (l *Log) recover(after uint64, apply func(lsn uint64, c CheckIn) error) error {
	names, err := l.fs.List()
	if err != nil {
		return err
	}
	var segs []segmentInfo
	for _, name := range names {
		if first, ok := parseSegmentName(name); ok {
			segs = append(segs, segmentInfo{name: name, first: first})
		}
	}
	// List is sorted and the fixed-width decimal names sort by LSN.
	l.nextLSN = after + 1
	if len(segs) == 0 {
		if l.nextLSN == 0 {
			l.nextLSN = 1
		}
		return nil
	}

	expect := segs[0].first
	if expect > after+1 {
		return fmt.Errorf("%w: first segment %s starts at LSN %d, need %d (checkpoint gap)",
			ErrCorrupt, segs[0].name, expect, after+1)
	}
	var survive []segmentInfo
	for i, seg := range segs {
		final := i == len(segs)-1
		if seg.first != expect {
			return fmt.Errorf("%w: segment %s starts at LSN %d, expected %d",
				ErrCorrupt, seg.name, seg.first, expect)
		}
		next, removed, err := l.replaySegment(seg, expect, after, final, apply)
		if err != nil {
			return err
		}
		if !removed {
			survive = append(survive, seg)
		}
		expect = next
	}
	if expect < after+1 {
		// Defensive: the checkpoint claims LSNs the log no longer holds.
		// Never reissue them.
		expect = after + 1
	}
	l.nextLSN = expect
	// OpenLog opens a fresh segment at nextLSN next; if the last survivor is
	// an empty segment with that very first LSN (a restart that crashed
	// before any append), the fresh segment recreates the same file — drop
	// the stale entry so it isn't tracked twice.
	if n := len(survive); n > 0 && survive[n-1].first == l.nextLSN {
		survive = survive[:n-1]
	}
	l.segments = survive
	l.m.replayed(&l.replay)
	return nil
}

// replaySegment replays one segment starting at LSN expect and returns the
// LSN expected next, plus whether the segment file was removed outright. On
// the final segment a malformed frame is treated as a torn tail: the file is
// truncated at the end of the last good frame and the scan stops.
func (l *Log) replaySegment(seg segmentInfo, expect, after uint64, final bool, apply func(lsn uint64, c CheckIn) error) (uint64, bool, error) {
	l.replay.Segments++
	f, err := l.fs.Open(seg.name)
	if err != nil {
		return 0, false, err
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<16)

	var hdr [segHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		// A header too short to read can only be the torn creation of the
		// final segment; anywhere else it is corruption.
		if final && (err == io.EOF || err == io.ErrUnexpectedEOF) {
			return expect, true, l.dropTail(seg.name, 0)
		}
		return 0, false, fmt.Errorf("%w: segment %s: short header", ErrCorrupt, seg.name)
	}
	if string(hdr[:8]) != segMagic {
		if final {
			return expect, true, l.dropTail(seg.name, 0)
		}
		return 0, false, fmt.Errorf("%w: segment %s: bad magic", ErrCorrupt, seg.name)
	}
	if first := binary.LittleEndian.Uint64(hdr[8:]); first != seg.first {
		return 0, false, fmt.Errorf("%w: segment %s: header LSN %d != name", ErrCorrupt, seg.name, first)
	}

	offset := int64(segHeaderSize)
	var frame [frameSize]byte
	for {
		_, err := io.ReadFull(r, frame[:frameHeaderSize])
		if err == io.EOF {
			return expect, false, nil // clean end of segment
		}
		bad := ""
		var lsn uint64
		var c CheckIn
		switch {
		case err == io.ErrUnexpectedEOF:
			bad = "short frame header"
		case err != nil:
			return 0, false, err
		default:
			length := binary.LittleEndian.Uint32(frame[0:])
			crc := binary.LittleEndian.Uint32(frame[4:])
			if length != recordPayload {
				bad = fmt.Sprintf("frame length %d", length)
				break
			}
			if _, err := io.ReadFull(r, frame[frameHeaderSize:]); err != nil {
				if err == io.EOF || err == io.ErrUnexpectedEOF {
					bad = "short payload"
					break
				}
				return 0, false, err
			}
			if crc32.Checksum(frame[frameHeaderSize:], castagnoli) != crc {
				bad = "CRC mismatch"
				break
			}
			lsn = binary.LittleEndian.Uint64(frame[frameHeaderSize:])
			c.POI = int64(binary.LittleEndian.Uint64(frame[frameHeaderSize+8:]))
			c.At = int64(binary.LittleEndian.Uint64(frame[frameHeaderSize+16:]))
			if lsn != expect {
				bad = fmt.Sprintf("LSN %d, expected %d", lsn, expect)
			}
		}
		if bad != "" {
			if !final {
				return 0, false, fmt.Errorf("%w: segment %s at offset %d: %s", ErrCorrupt, seg.name, offset, bad)
			}
			return expect, false, l.dropTail(seg.name, offset)
		}
		if lsn > after {
			if err := apply(lsn, c); err != nil {
				return 0, false, fmt.Errorf("wal: replaying LSN %d: %w", lsn, err)
			}
			l.replay.Records++
		} else {
			l.replay.Skipped++
		}
		expect++
		offset += frameSize
	}
}

// dropTail truncates the final segment at offset, discarding a torn tail
// (offset 0 removes the file entirely — its header never became whole).
func (l *Log) dropTail(name string, offset int64) error {
	size, err := l.fs.Size(name)
	if err != nil {
		return err
	}
	if size > offset {
		l.replay.TruncatedBytes += size - offset
	}
	if offset == 0 {
		if err := l.fs.Remove(name); err != nil {
			return err
		}
		return l.fs.SyncDir()
	}
	return l.fs.Truncate(name, offset)
}

// DescribeReplay renders the stats as one human-readable line.
func (s ReplayStats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d segment(s), %d record(s) replayed", s.Segments, s.Records)
	if s.Skipped > 0 {
		fmt.Fprintf(&b, ", %d skipped", s.Skipped)
	}
	if s.TruncatedBytes > 0 {
		fmt.Fprintf(&b, ", %d torn byte(s) truncated", s.TruncatedBytes)
	}
	return b.String()
}
