package wal

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// ErrCaughtUp is returned by SegmentReader.Next when every durable record
// has been delivered. It is not an error condition: the caller either stops
// or parks on Log.WaitDurable and tries again.
var ErrCaughtUp = errors.New("wal: caught up to durable LSN")

// ErrTruncated reports that the requested LSN predates the oldest segment
// still on disk — a checkpoint covered and deleted it. A replication
// follower that sees it must re-bootstrap from a snapshot; tailing cannot
// resume.
var ErrTruncated = errors.New("wal: LSN truncated by checkpoint")

// SegmentInfo describes one on-disk WAL segment.
type SegmentInfo struct {
	// Name is the segment file name (wal-<firstLSN>.seg).
	Name string
	// First is the LSN of the segment's first record.
	First uint64
	// Last is the highest durable LSN the segment holds; First-1 when the
	// segment is empty (a freshly rotated active segment). For closed
	// segments this is exact; for the active one it is the durable
	// watermark at call time.
	Last uint64
	// Size is the segment's current byte size on disk. On the active
	// segment it may run ahead of Last by written-but-not-yet-fsynced
	// frames.
	Size int64
}

// SegmentInfos returns a snapshot of the on-disk segments in LSN order:
// first/last LSN and byte size per segment, the metadata a replication
// leader advertises. Segments deleted concurrently (checkpoint truncation)
// are omitted.
func (l *Log) SegmentInfos() ([]SegmentInfo, error) {
	durable := l.durable.Load()
	l.mu.Lock()
	segs := append([]segmentInfo(nil), l.segments...)
	l.mu.Unlock()

	infos := make([]SegmentInfo, 0, len(segs))
	for i, s := range segs {
		info := SegmentInfo{Name: s.name, First: s.first}
		if i+1 < len(segs) {
			info.Last = segs[i+1].first - 1
		} else {
			info.Last = durable
			if info.Last < s.first {
				info.Last = s.first - 1 // active segment, nothing durable yet
			}
		}
		size, err := l.fs.Size(s.name)
		if err != nil {
			continue // deleted between snapshot and stat
		}
		info.Size = size
		infos = append(infos, info)
	}
	return infos, nil
}

// OldestLSN returns the first LSN still readable from the log's segments.
// Records below it were covered by a checkpoint and their segments deleted.
func (l *Log) OldestLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.segments) == 0 {
		return l.nextLSN
	}
	return l.segments[0].first
}

// EncodeFrames encodes the check-ins as consecutive CRC32C frames starting
// at LSN first — the exact on-disk segment codec, reused as the replication
// wire format (frames travel segment-less over HTTP and are decoded by a
// FrameScanner).
func EncodeFrames(first uint64, cs []CheckIn) []byte {
	return encodeFrames(first, cs)
}

// FrameScanner decodes a stream of CRC32C frames (the segment record codec
// without segment headers). A scanner created with first > 0 additionally
// enforces that LSNs are contiguous from first.
//
// Next returns io.EOF at a clean frame boundary and io.ErrUnexpectedEOF
// when the stream ends mid-frame — on a replication stream both just mean
// the connection ended and the follower should reconnect from its own
// durable position. ErrCorrupt reports a CRC, length or LSN-sequence
// violation, which on a verified-durable stream is real damage.
type FrameScanner struct {
	r      *bufio.Reader
	expect uint64 // next LSN required; 0 accepts any starting LSN
}

// NewFrameScanner reads frames from rd, requiring LSNs contiguous from
// first (0 accepts any start).
func NewFrameScanner(rd io.Reader, first uint64) *FrameScanner {
	br, ok := rd.(*bufio.Reader)
	if !ok {
		br = bufio.NewReaderSize(rd, 1<<16)
	}
	return &FrameScanner{r: br, expect: first}
}

// Buffered reports how many complete frames are already buffered — a
// follower uses it to batch applies without blocking on the network.
func (s *FrameScanner) Buffered() int {
	return s.r.Buffered() / frameSize
}

// Next decodes one frame.
func (s *FrameScanner) Next() (uint64, CheckIn, error) {
	var frame [frameSize]byte
	if _, err := io.ReadFull(s.r, frame[:frameHeaderSize]); err != nil {
		return 0, CheckIn{}, err
	}
	length := binary.LittleEndian.Uint32(frame[0:])
	crc := binary.LittleEndian.Uint32(frame[4:])
	if length != recordPayload {
		return 0, CheckIn{}, fmt.Errorf("%w: frame length %d", ErrCorrupt, length)
	}
	if _, err := io.ReadFull(s.r, frame[frameHeaderSize:]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, CheckIn{}, err
	}
	if crc32.Checksum(frame[frameHeaderSize:], castagnoli) != crc {
		return 0, CheckIn{}, fmt.Errorf("%w: frame CRC mismatch", ErrCorrupt)
	}
	lsn := binary.LittleEndian.Uint64(frame[frameHeaderSize:])
	if s.expect != 0 && lsn != s.expect {
		return 0, CheckIn{}, fmt.Errorf("%w: frame LSN %d, expected %d", ErrCorrupt, lsn, s.expect)
	}
	s.expect = lsn + 1
	return lsn, CheckIn{
		POI: int64(binary.LittleEndian.Uint64(frame[frameHeaderSize+8:])),
		At:  int64(binary.LittleEndian.Uint64(frame[frameHeaderSize+16:])),
	}, nil
}

// SegmentReader reads committed records from the log in LSN order, starting
// at an arbitrary LSN, safely against concurrent appends, rotation and
// checkpoint truncation. It never delivers a record past the durable
// watermark, so it cannot observe a torn or unfsynced frame: the committer
// finishes the batch's writes before it advances DurableLSN, and the reader
// checks the watermark before every frame.
//
// Next returns ErrCaughtUp once every durable record has been delivered;
// the caller parks on Log.WaitDurable and calls Next again. ErrTruncated
// means the position was deleted by a checkpoint and the reader is useless —
// a replication follower then re-bootstraps from a snapshot.
//
// A SegmentReader is not safe for concurrent use; open one per consumer.
type SegmentReader struct {
	l    *Log
	next uint64 // next LSN to deliver

	f  io.ReadCloser // current segment, nil between segments
	sc *FrameScanner
}

// OpenSegmentReader positions a reader at fromLSN. The position is validated
// lazily: a fromLSN already truncated surfaces as ErrTruncated from the
// first Next.
func (l *Log) OpenSegmentReader(fromLSN uint64) *SegmentReader {
	return &SegmentReader{l: l, next: fromLSN}
}

// NextLSN returns the LSN the next successful Next call will deliver.
func (r *SegmentReader) NextLSN() uint64 { return r.next }

// Close releases the underlying segment file. The reader may be used again
// afterwards; the next call reopens.
func (r *SegmentReader) Close() error {
	if r.f == nil {
		return nil
	}
	err := r.f.Close()
	r.f, r.sc = nil, nil
	return err
}

// Next delivers the next durable record.
func (r *SegmentReader) Next() (uint64, CheckIn, error) {
	if r.l.DurableLSN() < r.next {
		return 0, CheckIn{}, ErrCaughtUp
	}
	// The frame for r.next is fully on disk: the committer wrote it before
	// advancing the durable watermark we just read. An EOF therefore means
	// the current segment ended cleanly and the frame lives in a later one
	// (rotation handoff) — reopen at the segment that owns r.next. The
	// attempt bound turns a logic error into a loud failure instead of a
	// spin.
	for attempt := 0; attempt < 8; attempt++ {
		if r.f == nil {
			if err := r.open(); err != nil {
				return 0, CheckIn{}, err
			}
		}
		lsn, c, err := r.sc.Next()
		switch {
		case err == nil:
			r.next = lsn + 1
			return lsn, c, nil
		case err == io.EOF || err == io.ErrUnexpectedEOF:
			if cerr := r.Close(); cerr != nil {
				return 0, CheckIn{}, cerr
			}
		default:
			r.Close()
			return 0, CheckIn{}, err
		}
	}
	return 0, CheckIn{}, fmt.Errorf("wal: segment reader stuck at LSN %d", r.next)
}

// WaitNext is Next that parks on the durable watermark instead of returning
// ErrCaughtUp, until ctx ends (ctx.Err()) or the log closes (ErrClosed).
func (r *SegmentReader) WaitNext(ctx context.Context) (uint64, CheckIn, error) {
	for {
		lsn, c, err := r.Next()
		if !errors.Is(err, ErrCaughtUp) {
			return lsn, c, err
		}
		if err := r.l.WaitDurable(ctx, r.next); err != nil {
			return 0, CheckIn{}, err
		}
	}
}

// open opens the segment owning r.next and skips to its frame. Frames are
// fixed-width, so the offset is arithmetic.
func (r *SegmentReader) open() error {
	seg, ok := r.segmentFor(r.next)
	if !ok {
		return fmt.Errorf("%w: LSN %d predates the oldest segment", ErrTruncated, r.next)
	}
	f, err := r.l.fs.Open(seg.name)
	if err != nil {
		// The segment can vanish between lookup and open when a checkpoint
		// truncates it; re-check so the caller gets the sentinel, not a
		// raw file error.
		if _, again := r.segmentFor(r.next); !again {
			return fmt.Errorf("%w: LSN %d predates the oldest segment", ErrTruncated, r.next)
		}
		return err
	}
	sc := NewFrameScanner(f, r.next)
	var hdr [segHeaderSize]byte
	if _, err := io.ReadFull(sc.r, hdr[:]); err != nil {
		f.Close()
		return fmt.Errorf("wal: segment %s: short header: %w", seg.name, err)
	}
	if string(hdr[:8]) != segMagic {
		f.Close()
		return fmt.Errorf("%w: segment %s: bad magic", ErrCorrupt, seg.name)
	}
	if first := binary.LittleEndian.Uint64(hdr[8:]); first != seg.first {
		f.Close()
		return fmt.Errorf("%w: segment %s: header LSN %d != name", ErrCorrupt, seg.name, first)
	}
	if skip := int64(r.next-seg.first) * frameSize; skip > 0 {
		if _, err := io.CopyN(io.Discard, sc.r, skip); err != nil {
			f.Close()
			return fmt.Errorf("wal: segment %s: seeking to LSN %d: %w", seg.name, r.next, err)
		}
	}
	r.f, r.sc = f, sc
	return nil
}

// segmentFor finds the segment whose LSN range contains lsn.
func (r *SegmentReader) segmentFor(lsn uint64) (segmentInfo, bool) {
	r.l.mu.Lock()
	defer r.l.mu.Unlock()
	for i := len(r.l.segments) - 1; i >= 0; i-- {
		if r.l.segments[i].first <= lsn {
			return r.l.segments[i], true
		}
	}
	return segmentInfo{}, false
}
