package wal

import (
	"bytes"
	"context"
	"errors"
	"io"
	"sync"
	"testing"
	"time"
)

// smallSegments forces a rotation every few records so the reader tests
// cross segment boundaries constantly.
const smallSegments = segHeaderSize + 5*frameSize

// appendSerial appends n records one at a time and returns them.
func appendSerial(t *testing.T, l *Log, n int) []CheckIn {
	t.Helper()
	cs := make([]CheckIn, 0, n)
	for i := 0; i < n; i++ {
		c := CheckIn{POI: int64(i * 7), At: int64(i)}
		if _, err := l.Append([]CheckIn{c}); err != nil {
			t.Fatal(err)
		}
		cs = append(cs, c)
	}
	return cs
}

func TestSegmentInfos(t *testing.T) {
	l, err := OpenLog(testFS(t), LogOptions{SegmentBytes: smallSegments, NoSync: true}, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	const n = 23
	appendSerial(t, l, n)

	infos, err := l.SegmentInfos()
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) < 3 {
		t.Fatalf("expected several segments, got %d", len(infos))
	}
	if infos[0].First != 1 {
		t.Fatalf("first segment starts at %d, want 1", infos[0].First)
	}
	for i, info := range infos {
		if i > 0 {
			if info.First != infos[i-1].Last+1 {
				t.Fatalf("segment %d starts at %d, previous ended at %d", i, info.First, infos[i-1].Last)
			}
		}
		if info.Last < info.First-1 {
			t.Fatalf("segment %d: last %d < first-1 %d", i, info.Last, info.First-1)
		}
		// Every segment holds exactly header + one frame per record; the
		// serial workload leaves no unfsynced tail.
		want := int64(segHeaderSize) + int64(info.Last-info.First+1)*frameSize
		if info.Size != want {
			t.Fatalf("segment %d (%s): size %d, want %d", i, info.Name, info.Size, want)
		}
	}
	if last := infos[len(infos)-1].Last; last != n {
		t.Fatalf("final segment ends at %d, want %d", last, n)
	}
}

func TestSegmentReaderFromEveryLSN(t *testing.T) {
	l, err := OpenLog(testFS(t), LogOptions{SegmentBytes: smallSegments, NoSync: true}, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	const n = 17
	cs := appendSerial(t, l, n)

	// Every starting position — segment-initial, segment-final and interior
	// LSNs alike — must replay the exact suffix and then report caught-up.
	for from := uint64(1); from <= n+1; from++ {
		r := l.OpenSegmentReader(from)
		for want := from; want <= n; want++ {
			lsn, c, err := r.Next()
			if err != nil {
				t.Fatalf("from=%d: Next at %d: %v", from, want, err)
			}
			if lsn != want {
				t.Fatalf("from=%d: got LSN %d, want %d", from, lsn, want)
			}
			if c != cs[want-1] {
				t.Fatalf("from=%d: LSN %d: record %+v, want %+v", from, lsn, c, cs[want-1])
			}
		}
		if _, _, err := r.Next(); !errors.Is(err, ErrCaughtUp) {
			t.Fatalf("from=%d: expected ErrCaughtUp past the end, got %v", from, err)
		}
		r.Close()
	}
}

func TestSegmentReaderResumesAcrossRotation(t *testing.T) {
	l, err := OpenLog(testFS(t), LogOptions{SegmentBytes: smallSegments, NoSync: true}, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	appendSerial(t, l, 5) // exactly fills the first segment
	r := l.OpenSegmentReader(1)
	for want := uint64(1); want <= 5; want++ {
		if lsn, _, err := r.Next(); err != nil || lsn != want {
			t.Fatalf("lsn %d err %v, want %d", lsn, err, want)
		}
	}
	if _, _, err := r.Next(); !errors.Is(err, ErrCaughtUp) {
		t.Fatalf("expected caught-up at the live edge, got %v", err)
	}

	// Appends continue into a rotated segment; the same reader must hand
	// off to the new file without re-reading or skipping anything.
	appendSerial(t, l, 7)
	for want := uint64(6); want <= 12; want++ {
		lsn, _, err := r.Next()
		if err != nil {
			t.Fatalf("after rotation, Next at %d: %v", want, err)
		}
		if lsn != want {
			t.Fatalf("after rotation got LSN %d, want %d", lsn, want)
		}
	}
}

func TestSegmentReaderTruncated(t *testing.T) {
	l, err := OpenLog(testFS(t), LogOptions{SegmentBytes: smallSegments, NoSync: true}, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	appendSerial(t, l, 20)
	if err := l.TruncateThrough(10); err != nil {
		t.Fatal(err)
	}
	oldest := l.OldestLSN()
	if oldest <= 1 {
		t.Fatalf("truncation kept the first segment (oldest %d)", oldest)
	}

	r := l.OpenSegmentReader(1)
	if _, _, err := r.Next(); !errors.Is(err, ErrTruncated) {
		t.Fatalf("reading truncated LSN 1: got %v, want ErrTruncated", err)
	}
	// From the oldest surviving LSN the suffix is intact.
	r = l.OpenSegmentReader(oldest)
	for want := oldest; want <= 20; want++ {
		lsn, _, err := r.Next()
		if err != nil {
			t.Fatalf("Next at %d: %v", want, err)
		}
		if lsn != want {
			t.Fatalf("got LSN %d, want %d", lsn, want)
		}
	}
}

func TestFrameScannerRoundTrip(t *testing.T) {
	cs := corpus(40, 3)
	raw := EncodeFrames(100, cs)
	sc := NewFrameScanner(bytes.NewReader(raw), 100)
	for i, want := range cs {
		lsn, c, err := sc.Next()
		if err != nil {
			t.Fatal(err)
		}
		if lsn != 100+uint64(i) || c != want {
			t.Fatalf("frame %d: lsn %d record %+v", i, lsn, c)
		}
	}
	if _, _, err := sc.Next(); err != io.EOF {
		t.Fatalf("clean end: got %v, want io.EOF", err)
	}

	// A stream cut mid-frame ends with ErrUnexpectedEOF — a reconnect
	// signal, not corruption.
	sc = NewFrameScanner(bytes.NewReader(raw[:len(raw)-frameSize-5]), 100)
	var err error
	for err == nil {
		_, _, err = sc.Next()
	}
	if err != io.ErrUnexpectedEOF {
		t.Fatalf("torn stream: got %v, want ErrUnexpectedEOF", err)
	}

	// A flipped payload byte must fail the CRC.
	bad := append([]byte(nil), raw...)
	bad[frameSize+frameHeaderSize+3] ^= 0xff
	sc = NewFrameScanner(bytes.NewReader(bad), 100)
	if _, _, err := sc.Next(); err != nil {
		t.Fatalf("frame before the damage: %v", err)
	}
	if _, _, err := sc.Next(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupt frame: got %v, want ErrCorrupt", err)
	}

	// An LSN gap is corruption when sequencing is on, accepted when off.
	sc = NewFrameScanner(bytes.NewReader(raw), 99)
	if _, _, err := sc.Next(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("LSN gap: got %v, want ErrCorrupt", err)
	}
	sc = NewFrameScanner(bytes.NewReader(raw), 0)
	if lsn, _, err := sc.Next(); err != nil || lsn != 100 {
		t.Fatalf("unsequenced scan: lsn %d err %v", lsn, err)
	}
}

func TestWaitDurable(t *testing.T) {
	l, err := OpenLog(testFS(t), LogOptions{NoSync: true}, 0, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Already durable: returns immediately.
	if _, err := l.Append([]CheckIn{{POI: 1, At: 1}}); err != nil {
		t.Fatal(err)
	}
	if err := l.WaitDurable(context.Background(), 1); err != nil {
		t.Fatal(err)
	}

	// Future LSN: parks until an append advances the watermark.
	done := make(chan error, 1)
	go func() { done <- l.WaitDurable(context.Background(), 2) }()
	if _, err := l.Append([]CheckIn{{POI: 2, At: 2}}); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("WaitDurable after append: %v", err)
	}

	// Context cancellation unblocks with the context's error.
	ctx, cancel := context.WithCancel(context.Background())
	go func() { done <- l.WaitDurable(ctx, 99) }()
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled wait: %v", err)
	}

	// Close unblocks parked waiters with ErrClosed.
	go func() { done <- l.WaitDurable(context.Background(), 99) }()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; !errors.Is(err, ErrClosed) {
		t.Fatalf("wait across close: %v", err)
	}
}

// TestConcurrentAppendWhileTail is the torn-frame proof for the live tail:
// while several writers append through group commit (with real fsyncs and
// rotations), a reader tails the log via WaitNext. The reader must observe
// every record exactly once, in contiguous LSN order, and never a frame the
// committer has not fsynced — the durable-watermark fence makes a torn read
// impossible, and the CRC check inside the scanner would catch one anyway.
func TestConcurrentAppendWhileTail(t *testing.T) {
	l, err := OpenLog(testFS(t), LogOptions{SegmentBytes: smallSegments * 4}, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	const (
		writers   = 4
		perWriter = 125
		total     = writers * perWriter
	)
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Varying batch sizes exercise multi-frame writes and the
			// rotation boundary at different offsets.
			batch := make([]CheckIn, 0, 8)
			for i := 0; i < perWriter; i++ {
				batch = append(batch, CheckIn{POI: int64(w*perWriter + i), At: int64(i)})
				if len(batch) == 1+(i%3) || i == perWriter-1 {
					if _, err := l.Append(batch); err != nil {
						errs <- err
						return
					}
					batch = batch[:0]
				}
			}
		}(w)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	r := l.OpenSegmentReader(1)
	defer r.Close()
	seen := make(map[int64]bool, total)
	for next := uint64(1); next <= total; next++ {
		lsn, c, err := r.WaitNext(ctx)
		if err != nil {
			t.Fatalf("tail at LSN %d: %v", next, err)
		}
		if lsn != next {
			t.Fatalf("tail got LSN %d, want %d", lsn, next)
		}
		if seen[c.POI] {
			t.Fatalf("POI %d delivered twice", c.POI)
		}
		seen[c.POI] = true
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if len(seen) != total {
		t.Fatalf("tailed %d distinct records, want %d", len(seen), total)
	}
	if _, _, err := r.Next(); !errors.Is(err, ErrCaughtUp) {
		t.Fatalf("expected caught-up after the corpus, got %v", err)
	}
}
