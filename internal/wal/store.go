package wal

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"tartree/internal/aggcache"
	"tartree/internal/core"
	"tartree/internal/obs"
	"tartree/internal/tia"
)

// checkpointTmp is the scratch name a checkpoint is written under before the
// atomic rename; a crash mid-write leaves it behind, harmlessly.
const checkpointTmp = "checkpoint.tmp"

// checkpointName formats the file name of a checkpoint covering every record
// with LSN <= lsn.
func checkpointName(lsn uint64) string {
	return fmt.Sprintf("checkpoint-%016d.snap", lsn)
}

// parseCheckpointName extracts the covered LSN from a checkpoint file name.
func parseCheckpointName(name string) (uint64, bool) {
	var lsn uint64
	if n, err := fmt.Sscanf(name, "checkpoint-%016d.snap", &lsn); n != 1 || err != nil {
		return 0, false
	}
	if name != checkpointName(lsn) {
		return 0, false
	}
	return lsn, true
}

// CheckpointFileName formats the canonical file name of a checkpoint
// covering every record with LSN <= lsn.
func CheckpointFileName(lsn uint64) string { return checkpointName(lsn) }

// InstallCheckpoint atomically installs snapshot bytes from r as the
// checkpoint covering lsn: write to a scratch name, fsync, rename, fsync
// the directory. This is the bootstrap path of a replication follower — it
// seeds an empty WAL directory with the leader's snapshot so the normal
// OpenStore recovery loads it like any local checkpoint. A crash mid-write
// leaves only the scratch file, which recovery discards.
func InstallCheckpoint(fs FS, lsn uint64, r io.Reader) error {
	f, err := fs.Create(checkpointTmp)
	if err != nil {
		return err
	}
	if _, err := io.Copy(f, r); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := fs.Rename(checkpointTmp, checkpointName(lsn)); err != nil {
		return err
	}
	return fs.SyncDir()
}

// DirHasState reports whether the directory already holds recoverable
// durable state — an installed checkpoint or WAL segments. A replication
// follower bootstraps only when it does not: a restart recovers locally
// instead of re-downloading the leader's snapshot.
func DirHasState(fs FS) (bool, error) {
	names, err := fs.List()
	if err != nil {
		return false, err
	}
	for _, name := range names {
		if _, ok := parseCheckpointName(name); ok {
			return true, nil
		}
		if _, ok := parseSegmentName(name); ok {
			return true, nil
		}
	}
	return false, nil
}

// StoreOptions configures OpenStore.
type StoreOptions struct {
	// SegmentBytes and NoSync pass through to the log (LogOptions).
	SegmentBytes int64
	NoSync       bool
	// Metrics/Traces instrument both the WAL and the recovered tree.
	Metrics *obs.Registry
	Traces  *obs.TraceRing
	// TraceSink receives span traces from the ingest pipeline: group-commit
	// batch traces (linking member ingests), epoch-flush and checkpoint
	// traces. Per-request ingest spans ride the caller's context (IngestCtx).
	TraceSink obs.TraceSink
	// Factory builds the TIAs of a tree recovered from a checkpoint; nil
	// selects the core default.
	Factory tia.Factory
	// Cache attaches a shared epoch-versioned aggregate/result cache to the
	// recovered tree (nil disables). The store's locking makes it safe:
	// queries — the only writers of cache entries — run under the read
	// lock, mutations and their invalidation under the write lock.
	Cache *aggcache.Cache
	// SnapshotV3 makes Checkpoint write the flat snapshot-v3 format (exact
	// frozen layout + packed TIAs) instead of the legacy gob image, so the
	// next startup loads by section reads with no rebuild. Recovery reads
	// either format regardless — the loader dispatches on the magic bytes.
	SnapshotV3 bool
}

// RecoveryStats reports what OpenStore did to reach a serving state.
type RecoveryStats struct {
	// CheckpointLSN is the LSN covered by the loaded checkpoint (0 if none).
	CheckpointLSN uint64
	// CheckpointLoaded reports whether a checkpoint snapshot was found.
	CheckpointLoaded bool
	// Replay is the WAL scan that followed.
	Replay ReplayStats
}

// Store is a core.Tree whose ingestion path is durable: Ingest appends to
// the WAL, returns only after the records are fsynced (group commit), and
// then folds them into the tree. Queries run concurrently under a read
// lock; ingestion, epoch flushes, and checkpoint encoding take the write
// lock. OpenStore recovers the tree from the newest checkpoint plus a WAL
// replay, so a crash loses no acknowledged check-in.
type Store struct {
	fs   FS
	log  *Log
	m    *Metrics
	opts StoreOptions

	mu   sync.RWMutex // tree access: queries RLock, mutations Lock
	tree *core.Tree

	// Applied-LSN bookkeeping (guarded by mu). Group commit acknowledges
	// batches in LSN order but the per-call applies race to the write lock,
	// so applied ranges can arrive out of order; a checkpoint must cover
	// only the contiguous applied prefix or deleting WAL segments could
	// orphan a durable-but-unapplied record.
	appliedContig uint64
	appliedGaps   map[uint64]uint64 // first -> last of out-of-order applied ranges

	ckMu          sync.Mutex // serializes checkpoints
	checkpointLSN uint64     // LSN covered by the newest on-disk checkpoint

	recovery RecoveryStats
}

// OpenStore recovers a durable store from fs: load the newest checkpoint
// snapshot if one exists (otherwise build the base tree via base), replay
// the WAL records past it, and open the log for appends. base is only
// called when no checkpoint is found — typically it builds the tree from
// the historical dataset.
func OpenStore(fs FS, base func() (*core.Tree, error), opts StoreOptions) (*Store, error) {
	names, err := fs.List()
	if err != nil {
		return nil, err
	}
	var (
		ckName string
		ckLSN  uint64
		loaded bool
		stale  []string
	)
	for _, name := range names {
		if name == checkpointTmp {
			stale = append(stale, name) // torn checkpoint write; never renamed
			continue
		}
		if lsn, ok := parseCheckpointName(name); ok {
			if ckName != "" {
				stale = append(stale, ckName) // superseded by a newer one
			}
			ckName, ckLSN, loaded = name, lsn, true
		}
	}
	var tree *core.Tree
	if loaded {
		f, err := fs.Open(ckName)
		if err != nil {
			return nil, err
		}
		tree, err = core.LoadSnapshotObserved(f, opts.Factory, opts.Metrics, opts.Traces, opts.Cache)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("wal: loading checkpoint %s: %w", ckName, err)
		}
	} else {
		tree, err = base()
		if err != nil {
			return nil, err
		}
	}
	for _, name := range stale {
		if err := fs.Remove(name); err != nil {
			return nil, err
		}
	}

	m := NewMetrics(opts.Metrics)
	log, err := OpenLog(fs, LogOptions{
		SegmentBytes: opts.SegmentBytes,
		NoSync:       opts.NoSync,
		Metrics:      m,
		TraceSink:    opts.TraceSink,
	}, ckLSN, func(lsn uint64, c CheckIn) error {
		return tree.AddCheckIn(c.POI, c.At)
	})
	if err != nil {
		return nil, err
	}
	s := &Store{
		fs:            fs,
		log:           log,
		m:             m,
		opts:          opts,
		tree:          tree,
		appliedContig: log.NextLSN() - 1, // replay applied everything contiguously
		appliedGaps:   make(map[uint64]uint64),
		checkpointLSN: ckLSN,
		recovery: RecoveryStats{
			CheckpointLSN:    ckLSN,
			CheckpointLoaded: loaded,
			Replay:           log.ReplayStats(),
		},
	}
	return s, nil
}

// ErrInvalid wraps Ingest rejections that happen before anything is logged:
// unknown POIs and pre-origin timestamps. Servers map it to a client error;
// anything else from Ingest is an internal durability failure.
var ErrInvalid = errors.New("wal: invalid check-in")

// Recovery reports what OpenStore replayed.
func (s *Store) Recovery() RecoveryStats { return s.recovery }

// Tree returns the store's tree for direct reads of facets ingestion never
// mutates — Len, Grouping, Epochs, node counts. Anything the ingest path
// touches (pending check-ins, TIA contents, queries) must go through
// Query/QueryTraced/View, which take the store's read lock.
func (s *Store) Tree() *core.Tree { return s.tree }

// Log exposes the underlying write-ahead log (benchmarks and tests).
func (s *Store) Log() *Log { return s.log }

// DurableLSN returns the highest LSN known durable.
func (s *Store) DurableLSN() uint64 { return s.log.DurableLSN() }

// AppliedLSN returns the contiguous applied prefix: every record with LSN
// <= AppliedLSN is folded into the tree.
func (s *Store) AppliedLSN() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.appliedContig
}

// Ingest durably records the check-ins and folds them into the tree,
// returning the LSN of the last one. It returns only after the records —
// and everything group-committed with them — are on disk; on error nothing
// was acknowledged and the tree is untouched.
func (s *Store) Ingest(cs []CheckIn) (uint64, error) {
	return s.IngestCtx(context.Background(), cs)
}

// IngestCtx is Ingest with trace context: when ctx carries a span, the
// pipeline stages are recorded as children — validate, wal_append (with its
// fsync_batch durable wait), apply — giving each acknowledged batch a
// complete latency decomposition.
func (s *Store) IngestCtx(ctx context.Context, cs []CheckIn) (uint64, error) {
	if len(cs) == 0 {
		return s.log.DurableLSN(), nil
	}
	parent := obs.SpanFromContext(ctx)
	// Validate before logging so the post-durability apply cannot fail:
	// AddCheckIn only rejects unknown POIs and pre-origin timestamps, both
	// stable properties under concurrent ingest (the WAL path never deletes
	// POIs).
	vs := parent.StartChild("validate")
	vs.SetAttr("records", len(cs))
	s.mu.RLock()
	origin := s.tree.Epochs().Origin()
	var verr error
	for _, c := range cs {
		if _, ok := s.tree.Lookup(c.POI); !ok {
			verr = fmt.Errorf("%w: unknown POI %d", ErrInvalid, c.POI)
			break
		}
		if c.At < origin {
			verr = fmt.Errorf("%w: timestamp %d precedes epoch origin %d", ErrInvalid, c.At, origin)
			break
		}
	}
	s.mu.RUnlock()
	vs.End()
	if verr != nil {
		return 0, verr
	}

	ws := parent.StartChild("wal_append")
	last, err := s.log.AppendCtx(obs.ContextWithSpan(ctx, ws), cs) // blocks until durable
	ws.End()
	if err != nil {
		return 0, err
	}
	first := last - uint64(len(cs)) + 1

	as := parent.StartChild("apply")
	as.SetAttr("first_lsn", first)
	as.SetAttr("last_lsn", last)
	defer as.End()
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, c := range cs {
		if err := s.tree.AddCheckIn(c.POI, c.At); err != nil {
			// Unreachable by construction; surface loudly rather than lose
			// a durable record silently.
			return 0, fmt.Errorf("wal: applying durable LSN range [%d,%d]: %w", first, last, err)
		}
	}
	s.markApplied(first, last)
	return last, nil
}

// ApplyReplicated ingests a batch received from a replication leader,
// asserting it carries exactly the LSNs this store assigns next — the
// follower's log must be a byte-for-byte copy of the leader's record
// stream, so any discontinuity is divergence and fails loudly instead of
// silently renumbering. The batch is durable locally (group commit) and
// folded into the tree like any local ingest, so cache invalidation, epoch
// flushes and checkpoints work unchanged.
//
// The caller must be the store's only writer (a follower rejects local
// ingest), which makes the next-LSN check race-free.
func (s *Store) ApplyReplicated(first uint64, cs []CheckIn) (uint64, error) {
	if len(cs) == 0 {
		return s.AppliedLSN(), nil
	}
	if next := s.log.NextLSN(); next != first {
		return 0, fmt.Errorf("wal: replicated batch starts at LSN %d, log expects %d", first, next)
	}
	return s.Ingest(cs)
}

// EncodeSnapshot encodes a consistent snapshot of the tree (snapshot v3
// when the store is configured for it, the legacy gob image otherwise) and
// returns the encoded bytes plus the exact LSN they cover: the contiguous
// applied prefix at encode time. A replication follower that installs these
// bytes as a checkpoint and then tails the WAL from the returned LSN + 1
// reconstructs the leader's tree exactly.
func (s *Store) EncodeSnapshot() ([]byte, uint64, error) {
	s.mu.RLock()
	lsn := s.appliedContig
	var buf bytes.Buffer
	var err error
	if s.opts.SnapshotV3 {
		err = s.tree.SaveSnapshotV3(&buf)
	} else {
		err = s.tree.SaveSnapshot(&buf)
	}
	s.mu.RUnlock()
	if err != nil {
		return nil, 0, err
	}
	return buf.Bytes(), lsn, nil
}

// markApplied records that LSNs [first,last] are folded into the tree and
// advances the contiguous prefix, draining any out-of-order ranges that now
// connect. Caller holds mu.
func (s *Store) markApplied(first, last uint64) {
	if first != s.appliedContig+1 {
		s.appliedGaps[first] = last
		return
	}
	s.appliedContig = last
	for {
		end, ok := s.appliedGaps[s.appliedContig+1]
		if !ok {
			return
		}
		delete(s.appliedGaps, s.appliedContig+1)
		s.appliedContig = end
	}
}

// Query answers a TAR query under the read lock.
func (s *Store) Query(q core.Query) ([]core.Result, core.QueryStats, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.tree.Query(q)
}

// QueryTraced is Query with per-query tracing.
func (s *Store) QueryTraced(q core.Query, tr *obs.Trace) ([]core.Result, core.QueryStats, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.tree.QueryTraced(q, tr)
}

// QueryCtx answers a TAR query under the read lock with cancellation,
// deadline and per-query options — the context-aware entry point servers
// use. See core.(*Tree).QueryCtx.
func (s *Store) QueryCtx(ctx context.Context, q core.Query, opts *core.QueryOpts) ([]core.Result, core.QueryStats, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.tree.QueryCtx(ctx, q, opts)
}

// View runs f with the tree under the read lock; f must not mutate the tree
// or retain it past the call.
func (s *Store) View(f func(t *core.Tree)) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	f(s.tree)
}

// Freeze compiles and installs the tree's frozen flat layout under the
// write lock; subsequent queries traverse offsets instead of pointers. The
// WAL ingest path never mutates tree structure (check-ins only change TIA
// contents, which the frozen entries share), so the layout stays valid
// until an explicit rebuild. A tree recovered from a v3 checkpoint arrives
// already frozen.
func (s *Store) Freeze() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tree.Freeze()
}

// Frozen reports whether the tree currently has a frozen flat layout.
func (s *Store) Frozen() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.tree.Frozen()
}

// Unfreeze drops the frozen layout; subsequent queries run the pointer
// path. Used when serving is configured frozen-off but recovery restored a
// v3 checkpoint, which arrives pre-frozen.
func (s *Store) Unfreeze() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tree.Unfreeze()
}

// FlushEpochs folds every buffered epoch ending at or before now into the
// tree's TIAs.
func (s *Store) FlushEpochs(now int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tree.FlushEpochs(now)
}

// FlushObserved folds every buffered epoch that has fully elapsed on the
// tree's own clock — the latest timestamp it has seen. Periodic flush loops
// use this so "now" advances with the ingested stream rather than wall time.
// When the store has a trace sink, each flush that runs is recorded as its
// own "epoch_flush" trace: the flush holds the write lock, so its duration
// is a direct query-latency tax worth seeing on a timeline.
func (s *Store) FlushObserved() error {
	sp := obs.StartTrace("epoch_flush", obs.SpanContext{}, s.opts.TraceSink)
	s.mu.Lock()
	defer s.mu.Unlock()
	err := s.tree.FlushEpochs(s.tree.Clock())
	sp.SetAttr("clock", s.tree.Clock())
	sp.Finish()
	return err
}

// Checkpoint writes a snapshot of the tree covering the contiguous applied
// prefix, atomically installs it, and deletes WAL segments and older
// checkpoints it supersedes. Returns the covered LSN. Concurrent calls are
// serialized; a call that would cover nothing new is a no-op.
func (s *Store) Checkpoint() (uint64, error) {
	s.ckMu.Lock()
	defer s.ckMu.Unlock()
	start := time.Now()

	// Encode under the tree lock (pending check-ins travel in the snapshot
	// since version 2); all file I/O happens after release.
	s.mu.RLock()
	lsn := s.appliedContig
	if lsn == s.checkpointLSN {
		s.mu.RUnlock()
		return lsn, nil
	}
	ck := obs.StartTrace("checkpoint", obs.SpanContext{}, s.opts.TraceSink)
	ck.SetAttr("lsn", lsn)
	defer ck.Finish()
	enc := ck.StartChild("encode")
	var buf bytes.Buffer
	var err error
	if s.opts.SnapshotV3 {
		// Read-only even without an installed frozen layout (it compiles a
		// temporary one), so the read lock suffices.
		err = s.tree.SaveSnapshotV3(&buf)
	} else {
		err = s.tree.SaveSnapshot(&buf)
	}
	s.mu.RUnlock()
	enc.End()
	if err != nil {
		return 0, err
	}

	ws := ck.StartChild("write_install")
	defer ws.End()
	f, err := s.fs.Create(checkpointTmp)
	if err != nil {
		return 0, err
	}
	if _, err := f.Write(buf.Bytes()); err != nil {
		f.Close()
		return 0, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return 0, err
	}
	if err := f.Close(); err != nil {
		return 0, err
	}
	name := checkpointName(lsn)
	if err := s.fs.Rename(checkpointTmp, name); err != nil {
		return 0, err
	}
	if err := s.fs.SyncDir(); err != nil {
		return 0, err
	}

	// The new checkpoint is durable; everything it supersedes can go. A
	// crash in here leaves extra files that the next recovery or checkpoint
	// cleans up.
	prev := s.checkpointLSN
	s.checkpointLSN = lsn
	if prev > 0 {
		if err := s.fs.Remove(checkpointName(prev)); err != nil {
			return 0, err
		}
	}
	if err := s.log.TruncateThrough(lsn); err != nil {
		return 0, err
	}
	s.m.checkpointDone(time.Since(start))
	return lsn, nil
}

// CheckpointLSN returns the LSN covered by the newest installed checkpoint.
func (s *Store) CheckpointLSN() uint64 {
	s.ckMu.Lock()
	defer s.ckMu.Unlock()
	return s.checkpointLSN
}

// Close shuts the log down. It does not checkpoint; callers wanting a fast
// next startup call Checkpoint first.
func (s *Store) Close() error {
	return s.log.Close()
}
