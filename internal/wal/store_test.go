package wal

import (
	"math"
	"testing"

	"tartree/internal/core"
	"tartree/internal/geo"
	"tartree/internal/obs"
	"tartree/internal/tia"
)

const (
	testPOIs    = 16
	testEpochLn = 100
)

// newBaseTree builds the deterministic base tree the store tests recover
// into: testPOIs POIs scattered over a 100x100 world, uniform epochs.
func newBaseTree() (*core.Tree, error) {
	tr, err := core.NewTree(core.Options{
		World:       geo.Rect{Min: geo.Vector{0, 0}, Max: geo.Vector{100, 100}},
		EpochStart:  0,
		EpochLength: testEpochLn,
	})
	if err != nil {
		return nil, err
	}
	for id := int64(1); id <= testPOIs; id++ {
		p := core.POI{ID: id, X: float64(id*13%97) + 1, Y: float64(id*29%89) + 2}
		if err := tr.InsertPOI(p, nil); err != nil {
			return nil, err
		}
	}
	return tr, nil
}

// referenceTree ingests the corpus without any WAL and flushes at horizon.
func referenceTree(t *testing.T, cs []CheckIn, horizon int64) *core.Tree {
	t.Helper()
	tr, err := newBaseTree()
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cs {
		if err := tr.AddCheckIn(c.POI, c.At); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.FlushEpochs(horizon); err != nil {
		t.Fatal(err)
	}
	return tr
}

// assertSameResults compares per-POI scores of two result sets.
func assertSameResults(t *testing.T, label string, a, b []core.Result) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: %d results vs %d", label, len(a), len(b))
	}
	scores := make(map[int64]float64, len(a))
	for _, r := range a {
		scores[r.POI.ID] = r.Score
	}
	for _, r := range b {
		want, ok := scores[r.POI.ID]
		if !ok {
			t.Fatalf("%s: POI %d only in one result set", label, r.POI.ID)
		}
		if math.Abs(r.Score-want) > 1e-9 {
			t.Fatalf("%s: POI %d score %.12f vs %.12f", label, r.POI.ID, r.Score, want)
		}
	}
}

// assertTreesAgree compares every POI aggregate over the full horizon plus a
// handful of queries.
func assertTreesAgree(t *testing.T, s *Store, ref *core.Tree, horizon int64) {
	t.Helper()
	iv := tia.Interval{Start: 0, End: horizon}
	s.View(func(tr *core.Tree) {
		if err := tr.Check(); err != nil {
			t.Fatalf("recovered tree invariant: %v", err)
		}
		for id := int64(1); id <= testPOIs; id++ {
			a, err := ref.Aggregate(id, iv)
			if err != nil {
				t.Fatal(err)
			}
			b, err := tr.Aggregate(id, iv)
			if err != nil {
				t.Fatal(err)
			}
			if a != b {
				t.Fatalf("POI %d: aggregate %d, reference %d", id, b, a)
			}
		}
	})
	for trial := 0; trial < 5; trial++ {
		q := core.Query{
			X: float64(11 + trial*17), Y: float64(7 + trial*13),
			Iq:     tia.Interval{Start: int64(trial * 50), End: horizon},
			K:      4,
			Alpha0: 0.4,
		}
		want, _, err := ref.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := s.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		assertSameResults(t, "query", want, got)
	}
}

func TestStoreIngestCheckpointRecover(t *testing.T) {
	fs := testFS(t)
	reg := obs.NewRegistry()
	opts := StoreOptions{Metrics: reg}
	s, err := OpenStore(fs, newBaseTree, opts)
	if err != nil {
		t.Fatal(err)
	}
	if s.Recovery().CheckpointLoaded {
		t.Fatal("fresh store claims a checkpoint")
	}
	cs := corpus(400, 11)
	horizon := int64(400*3 + testEpochLn)
	for i := 0; i < len(cs); i += 5 {
		end := i + 5
		if end > len(cs) {
			end = len(cs)
		}
		if _, err := s.Ingest(cs[i:end]); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.AppliedLSN(); got != 400 {
		t.Fatalf("applied LSN = %d, want 400", got)
	}
	// Flush part of the stream, checkpoint mid-epoch: pending check-ins must
	// ride the snapshot.
	if err := s.FlushEpochs(600); err != nil {
		t.Fatal(err)
	}
	ck, err := s.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if ck != 400 {
		t.Fatalf("checkpoint LSN = %d, want 400", ck)
	}
	// Covered-nothing-new checkpoints are no-ops.
	if again, err := s.Checkpoint(); err != nil || again != ck {
		t.Fatalf("repeat checkpoint = %d, %v", again, err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenStore(fs, func() (*core.Tree, error) {
		t.Fatal("base tree rebuilt despite checkpoint")
		return nil, nil
	}, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	rec := s2.Recovery()
	if !rec.CheckpointLoaded || rec.CheckpointLSN != 400 {
		t.Fatalf("recovery stats %+v", rec)
	}
	if rec.Replay.Records != 0 {
		t.Fatalf("replayed %d records past a full checkpoint", rec.Replay.Records)
	}
	if err := s2.FlushEpochs(horizon); err != nil {
		t.Fatal(err)
	}
	assertTreesAgree(t, s2, referenceTree(t, cs, horizon), horizon)
}

func TestStoreRecoverWithoutCheckpoint(t *testing.T) {
	fs := testFS(t)
	s, err := OpenStore(fs, newBaseTree, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cs := corpus(150, 12)
	for _, c := range cs {
		if _, err := s.Ingest([]CheckIn{c}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenStore(fs, newBaseTree, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	rec := s2.Recovery()
	if rec.CheckpointLoaded || rec.Replay.Records != 150 {
		t.Fatalf("recovery stats %+v", rec)
	}
	horizon := int64(150*3 + testEpochLn)
	if err := s2.FlushEpochs(horizon); err != nil {
		t.Fatal(err)
	}
	assertTreesAgree(t, s2, referenceTree(t, cs, horizon), horizon)
}

func TestStoreRejectsInvalidBeforeLogging(t *testing.T) {
	fs := testFS(t)
	s, err := OpenStore(fs, newBaseTree, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	before := s.DurableLSN()
	if _, err := s.Ingest([]CheckIn{{POI: 9999, At: 10}}); err == nil {
		t.Fatal("unknown POI accepted")
	}
	if _, err := s.Ingest([]CheckIn{{POI: 1, At: -5}}); err == nil {
		t.Fatal("pre-origin check-in accepted")
	}
	if s.DurableLSN() != before {
		t.Fatal("rejected check-ins reached the log")
	}
	if n := s.AppliedLSN(); n != before {
		t.Fatalf("applied LSN moved to %d", n)
	}
}

func TestStoreCheckpointDeletesObsoleteSegments(t *testing.T) {
	fs := testFS(t)
	s, err := OpenStore(fs, newBaseTree, StoreOptions{SegmentBytes: 10 * frameSize})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for _, c := range corpus(95, 13) {
		if _, err := s.Ingest([]CheckIn{c}); err != nil {
			t.Fatal(err)
		}
	}
	before := s.Log().Segments()
	if before < 5 {
		t.Fatalf("want several segments, got %d", before)
	}
	if _, err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if after := s.Log().Segments(); after != 1 {
		t.Fatalf("checkpoint left %d segments, want 1 (the active one)", after)
	}
	names, err := fs.List()
	if err != nil {
		t.Fatal(err)
	}
	cks := 0
	for _, n := range names {
		if _, ok := parseCheckpointName(n); ok {
			cks++
		}
	}
	if cks != 1 {
		t.Fatalf("%d checkpoint files on disk, want 1", cks)
	}
}

// TestStorePendingSurviveCheckpoint pins satellite behavior end to end:
// check-ins buffered mid-epoch travel inside the checkpoint snapshot, so a
// restart that replays nothing still flushes them correctly.
func TestStorePendingSurviveCheckpoint(t *testing.T) {
	fs := testFS(t)
	s, err := OpenStore(fs, newBaseTree, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cs := corpus(60, 14)
	if _, err := s.Ingest(cs); err != nil {
		t.Fatal(err)
	}
	var pending int64
	s.View(func(tr *core.Tree) { pending = tr.PendingCheckIns() })
	if pending != 60 {
		t.Fatalf("pending = %d, want 60", pending)
	}
	if _, err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenStore(fs, newBaseTree, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	s2.View(func(tr *core.Tree) { pending = tr.PendingCheckIns() })
	if pending != 60 {
		t.Fatalf("pending after recovery = %d, want 60", pending)
	}
	horizon := int64(60*3 + testEpochLn)
	if err := s2.FlushEpochs(horizon); err != nil {
		t.Fatal(err)
	}
	assertTreesAgree(t, s2, referenceTree(t, cs, horizon), horizon)
}

// TestStoreCheckpointV3Recover: with StoreOptions.SnapshotV3 the checkpoint
// is the flat v3 image; recovery loads it by section reads (the tree comes
// back frozen), replays the WAL tail past it, and agrees exactly with an
// unjournaled reference.
func TestStoreCheckpointV3Recover(t *testing.T) {
	fs := testFS(t)
	opts := StoreOptions{SnapshotV3: true}
	s, err := OpenStore(fs, newBaseTree, opts)
	if err != nil {
		t.Fatal(err)
	}
	cs := corpus(300, 19)
	horizon := int64(300*3 + testEpochLn)
	// Ingest two thirds, freeze, checkpoint mid-epoch (pending check-ins
	// must travel in the v3 image too).
	if _, err := s.Ingest(cs[:200]); err != nil {
		t.Fatal(err)
	}
	if err := s.FlushEpochs(300); err != nil {
		t.Fatal(err)
	}
	s.Freeze()
	if !s.Frozen() {
		t.Fatal("Freeze did not install the flat layout")
	}
	ck, err := s.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if ck != 200 {
		t.Fatalf("checkpoint LSN = %d, want 200", ck)
	}
	// The tail past the checkpoint rides the WAL.
	if _, err := s.Ingest(cs[200:]); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenStore(fs, func() (*core.Tree, error) {
		t.Fatal("base tree rebuilt despite v3 checkpoint")
		return nil, nil
	}, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	rec := s2.Recovery()
	if !rec.CheckpointLoaded || rec.CheckpointLSN != 200 {
		t.Fatalf("recovery stats %+v", rec)
	}
	if rec.Replay.Records != 100 {
		t.Fatalf("replayed %d records, want the 100 past the checkpoint", rec.Replay.Records)
	}
	if !s2.Frozen() {
		t.Fatal("tree recovered from a v3 checkpoint is not frozen")
	}
	if err := s2.FlushEpochs(horizon); err != nil {
		t.Fatal(err)
	}
	assertTreesAgree(t, s2, referenceTree(t, cs, horizon), horizon)
}
