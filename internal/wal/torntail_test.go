package wal

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

// buildSegmentedLog writes n single-record appends into dir with small
// segments and returns the corpus plus the sorted segment list.
func buildSegmentedLog(t *testing.T, fs *DirFS, n int, seed int64) ([]CheckIn, []segmentInfo) {
	t.Helper()
	l, err := OpenLog(fs, LogOptions{SegmentBytes: 20 * frameSize, NoSync: true}, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	cs := corpus(n, seed)
	for _, c := range cs {
		if _, err := l.Append([]CheckIn{c}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	names, err := fs.List()
	if err != nil {
		t.Fatal(err)
	}
	var segs []segmentInfo
	for _, name := range names {
		if first, ok := parseSegmentName(name); ok {
			segs = append(segs, segmentInfo{name: name, first: first})
		}
	}
	if len(segs) < 3 {
		t.Fatalf("want several segments, got %d", len(segs))
	}
	return cs, segs
}

// TestTornTailTruncationProperty checks the torn-tail contract over random
// truncation offsets of the final segment: replay never errors, recovers
// exactly the records whose frames survived whole (a strict prefix of the
// corpus — no phantom records), assigns contiguous LSNs, and leaves the log
// writable.
func TestTornTailTruncationProperty(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	const n = 137
	for trial := 0; trial < 24; trial++ {
		fs := testFS(t)
		cs, segs := buildSegmentedLog(t, fs, n, 7)
		final := segs[len(segs)-1]
		base := int(final.first) - 1 // records stored in earlier segments
		size, err := fs.Size(final.name)
		if err != nil {
			t.Fatal(err)
		}

		// Cover the boundary cases explicitly, then go random: inside the
		// header, exactly the header, mid-frame, frame boundary, full size.
		var offset int64
		switch trial {
		case 0:
			offset = 0
		case 1:
			offset = segHeaderSize - 3
		case 2:
			offset = segHeaderSize
		case 3:
			offset = segHeaderSize + frameSize/2
		case 4:
			offset = segHeaderSize + frameSize
		case 5:
			offset = size
		default:
			offset = r.Int63n(size + 1)
		}
		if err := fs.Truncate(final.name, offset); err != nil {
			t.Fatal(err)
		}

		want := base
		if offset >= segHeaderSize {
			want = base + int((offset-segHeaderSize)/frameSize)
		}
		if want > n {
			want = n
		}

		var got memApply
		l, err := OpenLog(fs, LogOptions{NoSync: true}, 0, got.fn)
		if err != nil {
			t.Fatalf("trial %d offset %d: replay errored: %v", trial, offset, err)
		}
		if len(got.recs) != want {
			t.Fatalf("trial %d offset %d: replayed %d records, want %d", trial, offset, len(got.recs), want)
		}
		for i, c := range got.recs {
			if c != cs[i] {
				t.Fatalf("trial %d: record %d = %+v, want %+v (phantom or reordered)", trial, i, c, cs[i])
			}
			if got.lsns[i] != uint64(i+1) {
				t.Fatalf("trial %d: lsn[%d] = %d, want %d", trial, i, got.lsns[i], i+1)
			}
		}

		// The repaired log accepts appends that replay right after the
		// surviving prefix.
		extra := CheckIn{POI: 99, At: 424242}
		lsn, err := l.Append([]CheckIn{extra})
		if err != nil {
			t.Fatal(err)
		}
		if lsn != uint64(want+1) {
			t.Fatalf("trial %d: post-repair append got LSN %d, want %d", trial, lsn, want+1)
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		var again memApply
		l2, err := OpenLog(fs, LogOptions{NoSync: true}, 0, again.fn)
		if err != nil {
			t.Fatal(err)
		}
		if len(again.recs) != want+1 || again.recs[want] != extra {
			t.Fatalf("trial %d: re-replay got %d records", trial, len(again.recs))
		}
		l2.Close()
	}
}

// TestTornTailGarbageProperty flips one byte in the final segment: CRC (or
// frame-shape) validation must drop the damaged frame and everything after
// it, keeping the intact prefix, and never error.
func TestTornTailGarbageProperty(t *testing.T) {
	r := rand.New(rand.NewSource(123))
	const n = 137
	for trial := 0; trial < 16; trial++ {
		fs := testFS(t)
		cs, segs := buildSegmentedLog(t, fs, n, 8)
		final := segs[len(segs)-1]
		base := int(final.first) - 1
		size, err := fs.Size(final.name)
		if err != nil {
			t.Fatal(err)
		}
		if size <= segHeaderSize {
			t.Fatalf("final segment has no records")
		}
		// Damage one byte somewhere in the record area.
		pos := segHeaderSize + r.Int63n(size-segHeaderSize)
		path := filepath.Join(fs.Dir(), final.name)
		f, err := os.OpenFile(path, os.O_RDWR, 0)
		if err != nil {
			t.Fatal(err)
		}
		var b [1]byte
		if _, err := f.ReadAt(b[:], pos); err != nil {
			t.Fatal(err)
		}
		b[0] ^= 0x5a
		if _, err := f.WriteAt(b[:], pos); err != nil {
			t.Fatal(err)
		}
		f.Close()

		damagedFrame := int((pos - segHeaderSize) / frameSize)
		want := base + damagedFrame

		var got memApply
		l, err := OpenLog(fs, LogOptions{NoSync: true}, 0, got.fn)
		if err != nil {
			t.Fatalf("trial %d pos %d: replay errored: %v", trial, pos, err)
		}
		if len(got.recs) != want {
			t.Fatalf("trial %d pos %d: replayed %d, want %d", trial, pos, len(got.recs), want)
		}
		for i, c := range got.recs {
			if c != cs[i] || got.lsns[i] != uint64(i+1) {
				t.Fatalf("trial %d: record %d corrupted prefix", trial, i)
			}
		}
		if st := l.ReplayStats(); st.TruncatedBytes == 0 {
			t.Fatalf("trial %d: no torn bytes recorded", trial)
		}
		l.Close()
	}
}
