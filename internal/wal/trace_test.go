package wal

import (
	"bytes"
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"tartree/internal/obs"
)

// TestIngestTraceSpans verifies the per-request ingest span tree: a traced
// IngestCtx produces validate → wal_append (with a nested fsync_batch
// durable wait) → apply under the caller's root span.
func TestIngestTraceSpans(t *testing.T) {
	fs := testFS(t)
	sink := obs.NewTraceBuffer(16)
	s, err := OpenStore(fs, newBaseTree, StoreOptions{TraceSink: sink})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	root := obs.StartTrace("ingest_request", obs.SpanContext{}, sink)
	ctx := obs.ContextWithSpan(context.Background(), root)
	if _, err := s.IngestCtx(ctx, corpus(5, 3)); err != nil {
		t.Fatal(err)
	}
	root.Finish()

	ft := sink.Find(root.Context().TraceID)
	if ft == nil {
		t.Fatal("ingest trace not delivered")
	}
	for _, name := range []string{"validate", "wal_append", "fsync_batch", "apply"} {
		if ft.Find(name) == nil {
			var buf bytes.Buffer
			ft.WriteTree(&buf)
			t.Fatalf("trace missing span %q:\n%s", name, buf.String())
		}
	}
	if fb := ft.Find("fsync_batch"); fb.Parent != ft.Find("wal_append").ID {
		t.Fatal("fsync_batch must nest under wal_append")
	}
	if ft.Find("validate").Parent != ft.Root().ID {
		t.Fatal("validate must be a direct child of the request root")
	}
	// The stages are siblings ordered validate < wal_append < apply.
	if va, wa := ft.Find("validate"), ft.Find("wal_append"); va.End.After(wa.Start) {
		t.Fatal("validate must end before wal_append starts")
	}
}

// TestBatchTraceLinksMembers drives concurrent ingests against a slow-fsync
// FS so the committer coalesces them, then checks that a wal_commit_batch
// trace links at least two member fsync_batch spans from distinct traces.
func TestBatchTraceLinksMembers(t *testing.T) {
	slow := &SlowFS{FS: testFS(t), SyncDelay: 20 * time.Millisecond}
	sink := obs.NewTraceBuffer(64)
	s, err := OpenStore(slow, newBaseTree, StoreOptions{TraceSink: sink})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// First ingest occupies the committer in its slow fsync; the rest pile
	// up in the queue and ride one batch.
	const writers = 6
	var wg sync.WaitGroup
	memberIDs := make([]obs.TraceID, writers)
	for i := 0; i < writers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			root := obs.StartTrace("ingest_request", obs.SpanContext{}, sink)
			memberIDs[i] = root.Context().TraceID
			ctx := obs.ContextWithSpan(context.Background(), root)
			if _, err := s.IngestCtx(ctx, []CheckIn{{POI: int64(i%testPOIs) + 1, At: int64(i)}}); err != nil {
				t.Error(err)
			}
			root.Finish()
		}()
	}
	wg.Wait()

	members := make(map[obs.TraceID]bool, writers)
	for _, id := range memberIDs {
		members[id] = true
	}
	best := 0
	for _, ft := range sink.Traces() {
		if ft.Root().Name != "wal_commit_batch" {
			continue
		}
		linked := make(map[obs.TraceID]bool)
		for _, link := range ft.Root().Links {
			if members[link.TraceID] {
				linked[link.TraceID] = true
			}
		}
		if len(linked) > best {
			best = len(linked)
		}
		if ft.Find("fsync") == nil {
			t.Error("batch trace missing fsync child span")
		}
	}
	if best < 2 {
		t.Fatalf("no batch trace links >= 2 member ingests (best %d); group commit did not coalesce", best)
	}
}

// TestFlushAndCheckpointTraces checks the background-maintenance traces and
// the fsync-stall histogram exposure.
func TestFlushAndCheckpointTraces(t *testing.T) {
	fs := testFS(t)
	sink := obs.NewTraceBuffer(16)
	reg := obs.NewRegistry()
	s, err := OpenStore(fs, newBaseTree, StoreOptions{TraceSink: sink, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Ingest(corpus(50, 7)); err != nil {
		t.Fatal(err)
	}
	if err := s.FlushObserved(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	var names []string
	for _, ft := range sink.Traces() {
		names = append(names, ft.Root().Name)
	}
	joined := strings.Join(names, ",")
	if !strings.Contains(joined, "epoch_flush") {
		t.Fatalf("no epoch_flush trace in %q", joined)
	}
	if !strings.Contains(joined, "checkpoint") {
		t.Fatalf("no checkpoint trace in %q", joined)
	}
	for _, ft := range sink.Traces() {
		if ft.Root().Name == "checkpoint" {
			if ft.Find("encode") == nil || ft.Find("write_install") == nil {
				t.Fatal("checkpoint trace missing encode/write_install children")
			}
		}
	}

	var buf bytes.Buffer
	if _, err := reg.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"tartree_wal_fsync_stall_seconds_count",
		"tartree_wal_checkpoint_duration_seconds_count",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}
