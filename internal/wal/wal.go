// Package wal implements the durable write path of the TAR-tree server: a
// segmented append-only check-in log with group-commit fsync batching,
// crash recovery that tolerates a torn tail, and checkpointing that bounds
// replay work (store.go).
//
// The paper's TAR-tree serves a live LBSN workload — check-ins arrive
// continuously and fold into the tree when their epoch closes (Section 4.2)
// — but the aggregates a crash would lose are exactly the buffered,
// not-yet-flushed check-ins. The WAL makes every acknowledged check-in
// durable before the caller proceeds: Append returns only after the record
// (and, thanks to group commit, everything batched with it) has been
// fsynced.
//
// On disk a WAL is a directory of segment files wal-<firstLSN>.seg, each a
// 16-byte header followed by CRC32C-framed records with contiguous,
// monotonically increasing log sequence numbers. Replay scans the segments
// in order, verifies every frame, and — on the final segment only — treats
// the first bad frame as a torn tail from an interrupted write: the file is
// truncated at the last good frame and the log continues from there. A bad
// frame anywhere else is real corruption and fails recovery.
package wal

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sync"
	"sync/atomic"
	"time"

	"tartree/internal/obs"
)

// CheckIn is one logged event: a check-in at POI at time At.
type CheckIn struct {
	POI int64
	At  int64
}

// Frame layout: u32 payload length, u32 CRC32C of the payload, payload.
// The payload of a check-in record is u64 LSN + i64 POI + i64 At.
const (
	frameHeaderSize = 8
	recordPayload   = 24
	frameSize       = frameHeaderSize + recordPayload

	segMagic      = "TARWAL1\n"
	segHeaderSize = 16 // magic + u64 first LSN
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrClosed is returned by Append after Close.
var ErrClosed = errors.New("wal: log closed")

// LogOptions configures a Log.
type LogOptions struct {
	// SegmentBytes rotates to a new segment once the active one reaches
	// this size (default 4 MiB). Rotation happens on record boundaries, so
	// segments may overshoot by up to one batch.
	SegmentBytes int64
	// NoSync skips the fsync after each commit batch. Throughput
	// experiments use it to isolate the cost of durability; a crash can
	// then lose acknowledged records, exactly like a database running with
	// synchronous_commit=off.
	NoSync bool
	// Metrics, when set, publishes WAL counters and latency histograms
	// (appends, fsyncs, batch sizes, replay work) into the registry.
	Metrics *Metrics
	// TraceSink, when set, receives one trace per group-commit batch. The
	// batch trace links the span contexts of the member AppendCtx calls it
	// made durable — the cross-request edge a flamegraph needs to explain
	// why a 1-record append waited out a 500-record fsync.
	TraceSink obs.TraceSink
}

func (o *LogOptions) fill() {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
}

// appendReq is one Append call waiting for its batch to become durable.
type appendReq struct {
	data []byte
	last uint64
	done chan error

	// enqueued is when the request entered the commit queue; the committer
	// reports the gap until its batch starts as fsync stall.
	enqueued time.Time
	// link is the caller's fsync_batch span context (zero when the caller
	// is untraced); the batch trace links it.
	link obs.SpanContext
}

// Log is the write-ahead check-in log. All methods are safe for concurrent
// use; Append blocks until the record batch is durable.
type Log struct {
	fs   FS
	opts LogOptions

	mu      sync.Mutex
	nextLSN uint64 // next LSN to assign
	queue   []*appendReq
	closed  bool
	failed  error // sticky commit failure; append-after-failure returns it

	// Committer-owned state (no lock needed once the goroutine runs).
	seg      File
	segStart uint64
	segSize  int64
	segments []segmentInfo // closed + active segments, ascending

	durable atomic.Uint64
	// durableCh is closed and replaced under mu every time durable advances
	// (and once more on Close) — the broadcast WaitDurable and the
	// replication long-poll block on.
	durableCh chan struct{}
	wake      chan struct{}
	quit      chan struct{}
	done      chan struct{}

	replay ReplayStats
	m      *Metrics
}

// segmentInfo tracks one on-disk segment.
type segmentInfo struct {
	name  string
	first uint64
}

// ReplayStats reports what recovery did.
type ReplayStats struct {
	// Segments scanned during replay.
	Segments int
	// Records replayed (LSN greater than the caller's floor).
	Records int64
	// Skipped counts records at or below the floor (already covered by a
	// checkpoint) plus records the apply callback declined.
	Skipped int64
	// TruncatedBytes is the torn tail removed from the final segment.
	TruncatedBytes int64
}

// OpenLog opens (creating if necessary) the WAL stored in fs. Existing
// records with LSN > after are replayed in order through apply before the
// log accepts new appends; apply returning an error aborts recovery (nil
// scans without delivering). The log then appends to a fresh segment
// starting at the next LSN.
func OpenLog(fs FS, opts LogOptions, after uint64, apply func(lsn uint64, c CheckIn) error) (*Log, error) {
	opts.fill()
	if apply == nil {
		apply = func(uint64, CheckIn) error { return nil }
	}
	l := &Log{
		fs:        fs,
		opts:      opts,
		durableCh: make(chan struct{}),
		wake:      make(chan struct{}, 1),
		quit:      make(chan struct{}),
		done:      make(chan struct{}),
		m:         opts.Metrics,
	}
	if err := l.recover(after, apply); err != nil {
		return nil, err
	}
	if err := l.openSegment(l.nextLSN); err != nil {
		return nil, err
	}
	l.durable.Store(l.nextLSN - 1)
	l.m.setSegments(len(l.segments))
	go l.committer()
	return l, nil
}

// DurableLSN returns the highest LSN known durable.
func (l *Log) DurableLSN() uint64 { return l.durable.Load() }

// NextLSN returns the next LSN the log will assign.
func (l *Log) NextLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextLSN
}

// ReplayStats returns what recovery replayed when the log was opened.
func (l *Log) ReplayStats() ReplayStats { return l.replay }

// Segments returns the number of on-disk segments (including the active
// one).
func (l *Log) Segments() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.segments)
}

// Append makes the check-ins durable and returns the LSN of the last one.
// Concurrent Appends are coalesced by the committer goroutine into one
// write+fsync (group commit); each caller returns once its own batch is on
// disk.
func (l *Log) Append(cs []CheckIn) (uint64, error) {
	return l.AppendCtx(context.Background(), cs)
}

// AppendCtx is Append with trace context: when ctx carries a span (see
// obs.ContextWithSpan), the durable wait is recorded as a child span
// "fsync_batch" whose context the group-commit batch trace links back to.
// The context does not cancel the append — once queued, a record becomes
// durable regardless.
func (l *Log) AppendCtx(ctx context.Context, cs []CheckIn) (uint64, error) {
	if len(cs) == 0 {
		return l.durable.Load(), nil
	}
	req := &appendReq{done: make(chan error, 1)}
	start := time.Now()
	var fsSpan *obs.Span
	if parent := obs.SpanFromContext(ctx); parent != nil {
		fsSpan = parent.StartChild("fsync_batch")
		fsSpan.SetAttr("records", len(cs))
		req.link = fsSpan.Context()
	}

	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		fsSpan.End()
		return 0, ErrClosed
	}
	if l.failed != nil {
		err := l.failed
		l.mu.Unlock()
		fsSpan.End()
		return 0, err
	}
	first := l.nextLSN
	l.nextLSN += uint64(len(cs))
	req.last = l.nextLSN - 1
	req.data = encodeFrames(first, cs)
	req.enqueued = start
	l.queue = append(l.queue, req)
	l.mu.Unlock()

	select {
	case l.wake <- struct{}{}:
	default:
	}
	err := <-req.done
	fsSpan.SetAttr("last_lsn", req.last)
	fsSpan.End()
	if err != nil {
		return 0, err
	}
	l.m.appendDone(len(cs), time.Since(start))
	return req.last, nil
}

// committer drains the append queue: it writes every queued request,
// rotates segments as needed, issues one fsync for the whole batch, and
// only then releases the callers. While an fsync is in flight new appends
// pile up in the queue, so a slow disk automatically yields large batches —
// the classic group-commit dynamic.
func (l *Log) committer() {
	defer close(l.done)
	for {
		select {
		case <-l.wake:
		case <-l.quit:
			// Drain whatever queued before Close.
			l.commitPending()
			return
		}
		l.commitPending()
	}
}

// commitPending commits every currently queued request as one batch.
func (l *Log) commitPending() {
	l.mu.Lock()
	batch := l.queue
	l.queue = nil
	l.mu.Unlock()
	if len(batch) == 0 {
		return
	}
	err := l.commit(batch)
	if err != nil {
		l.mu.Lock()
		if l.failed == nil {
			l.failed = fmt.Errorf("wal: commit failed: %w", err)
		}
		l.mu.Unlock()
	}
	for _, req := range batch {
		req.done <- err
	}
}

// commit writes and fsyncs one batch. When a trace sink is configured the
// batch gets its own trace, rooted at "wal_commit_batch", linking every
// traced member append — the batch is shared work with no single parent
// request, exactly the shape a scatter-gather fan-in has.
func (l *Log) commit(batch []*appendReq) error {
	start := time.Now()
	bt := obs.StartTrace("wal_commit_batch", obs.SpanContext{}, l.opts.TraceSink)
	for _, req := range batch {
		l.m.fsyncStall(start.Sub(req.enqueued))
		if req.link.Valid() {
			bt.AddLink(req.link)
		}
	}
	var records int64
	defer func() {
		bt.SetAttr("appends", len(batch))
		bt.SetAttr("records", records)
		bt.Finish()
	}()
	for _, req := range batch {
		if l.segSize >= l.opts.SegmentBytes {
			first := frameLSN(req.data)
			if err := l.rotate(first); err != nil {
				return err
			}
		}
		n, err := l.seg.Write(req.data)
		if err != nil {
			return err
		}
		l.segSize += int64(n)
		records += int64(len(req.data) / frameSize)
	}
	if !l.opts.NoSync {
		sp := bt.StartChild("fsync")
		fsyncStart := time.Now()
		err := l.seg.Sync()
		sp.End()
		if err != nil {
			return err
		}
		l.m.fsyncDone(time.Since(fsyncStart))
	}
	last := batch[len(batch)-1].last
	l.durable.Store(last)
	l.broadcastDurable()
	l.m.batchDone(len(batch), records)
	return nil
}

// broadcastDurable wakes every WaitDurable blocked on an older watermark.
func (l *Log) broadcastDurable() {
	l.mu.Lock()
	close(l.durableCh)
	l.durableCh = make(chan struct{})
	l.mu.Unlock()
}

// WaitDurable blocks until DurableLSN() >= lsn, ctx ends, or the log is
// closed. The replication stream uses it to long-poll the live segment:
// a caught-up reader parks here instead of spinning on DurableLSN.
func (l *Log) WaitDurable(ctx context.Context, lsn uint64) error {
	for {
		l.mu.Lock()
		if l.durable.Load() >= lsn {
			l.mu.Unlock()
			return nil
		}
		if l.closed {
			l.mu.Unlock()
			return ErrClosed
		}
		ch := l.durableCh
		l.mu.Unlock()
		select {
		case <-ch:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// rotate closes the active segment and starts a new one whose first record
// will carry LSN first. The old segment is fsynced before the new one is
// created, so every non-final segment on disk is complete: replay treats a
// bad frame there as corruption, not a torn tail.
func (l *Log) rotate(first uint64) error {
	if !l.opts.NoSync {
		if err := l.seg.Sync(); err != nil {
			return err
		}
	}
	if err := l.seg.Close(); err != nil {
		return err
	}
	if err := l.openSegment(first); err != nil {
		return err
	}
	l.m.rotated()
	return nil
}

// openSegment creates the segment file whose first record carries LSN
// first, writes its header, and makes the creation durable.
func (l *Log) openSegment(first uint64) error {
	name := segmentName(first)
	f, err := l.fs.Create(name)
	if err != nil {
		return err
	}
	var hdr [segHeaderSize]byte
	copy(hdr[:8], segMagic)
	binary.LittleEndian.PutUint64(hdr[8:], first)
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return err
	}
	if !l.opts.NoSync {
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
		if err := l.fs.SyncDir(); err != nil {
			f.Close()
			return err
		}
	}
	l.seg = f
	l.segStart = first
	l.segSize = segHeaderSize

	l.mu.Lock()
	l.segments = append(l.segments, segmentInfo{name: name, first: first})
	segs := len(l.segments)
	l.mu.Unlock()
	l.m.setSegments(segs)
	return nil
}

// TruncateThrough deletes every closed segment whose records all have LSN
// <= lsn — they are covered by a checkpoint and no longer needed for
// recovery. The active segment is never deleted.
func (l *Log) TruncateThrough(lsn uint64) error {
	l.mu.Lock()
	var victims []segmentInfo
	keep := make([]segmentInfo, 0, len(l.segments))
	for i, s := range l.segments {
		// The active segment is the final entry; a closed segment's LSN
		// range ends where the next one begins.
		closed := i+1 < len(l.segments)
		if closed && l.segments[i+1].first-1 <= lsn {
			victims = append(victims, s)
		} else {
			keep = append(keep, s)
		}
	}
	l.segments = keep
	segs := len(l.segments)
	l.mu.Unlock()

	for _, s := range victims {
		if err := l.fs.Remove(s.name); err != nil {
			return err
		}
		l.m.segmentDeleted()
	}
	if len(victims) > 0 {
		if err := l.fs.SyncDir(); err != nil {
			return err
		}
	}
	l.m.setSegments(segs)
	return nil
}

// Close flushes pending appends and shuts the committer down.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		<-l.done
		return nil
	}
	l.closed = true
	l.mu.Unlock()
	close(l.quit)
	<-l.done
	l.broadcastDurable() // wake WaitDurable parkers so they observe closed
	if l.seg != nil {
		if !l.opts.NoSync {
			if err := l.seg.Sync(); err != nil {
				l.seg.Close()
				return err
			}
		}
		return l.seg.Close()
	}
	return nil
}

// encodeFrames encodes the check-ins as consecutive frames starting at LSN
// first.
func encodeFrames(first uint64, cs []CheckIn) []byte {
	buf := make([]byte, 0, len(cs)*frameSize)
	var payload [recordPayload]byte
	for i, c := range cs {
		binary.LittleEndian.PutUint64(payload[0:], first+uint64(i))
		binary.LittleEndian.PutUint64(payload[8:], uint64(c.POI))
		binary.LittleEndian.PutUint64(payload[16:], uint64(c.At))
		var hdr [frameHeaderSize]byte
		binary.LittleEndian.PutUint32(hdr[0:], recordPayload)
		binary.LittleEndian.PutUint32(hdr[4:], crc32.Checksum(payload[:], castagnoli))
		buf = append(buf, hdr[:]...)
		buf = append(buf, payload[:]...)
	}
	return buf
}

// frameLSN reads the LSN of the first frame in an encoded batch.
func frameLSN(data []byte) uint64 {
	return binary.LittleEndian.Uint64(data[frameHeaderSize:])
}
