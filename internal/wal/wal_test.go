package wal

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"tartree/internal/obs"
)

// memApply collects replayed records for assertions.
type memApply struct {
	lsns []uint64
	recs []CheckIn
}

func (a *memApply) fn(lsn uint64, c CheckIn) error {
	a.lsns = append(a.lsns, lsn)
	a.recs = append(a.recs, c)
	return nil
}

func testFS(t *testing.T) *DirFS {
	t.Helper()
	fs, err := NewDirFS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

func corpus(n int, seed int64) []CheckIn {
	r := rand.New(rand.NewSource(seed))
	cs := make([]CheckIn, n)
	for i := range cs {
		cs[i] = CheckIn{POI: int64(r.Intn(16) + 1), At: int64(i * 3)}
	}
	return cs
}

func TestLogRoundTrip(t *testing.T) {
	fs := testFS(t)
	l, err := OpenLog(fs, LogOptions{}, 0, func(uint64, CheckIn) error {
		t.Fatal("fresh log replayed records")
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	cs := corpus(100, 1)
	for i := 0; i < len(cs); i += 7 {
		end := i + 7
		if end > len(cs) {
			end = len(cs)
		}
		lsn, err := l.Append(cs[i:end])
		if err != nil {
			t.Fatal(err)
		}
		if want := uint64(end); lsn != want {
			t.Fatalf("append returned LSN %d, want %d", lsn, want)
		}
		if l.DurableLSN() < lsn {
			t.Fatalf("durable %d < acked %d", l.DurableLSN(), lsn)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	var got memApply
	l2, err := OpenLog(fs, LogOptions{}, 0, got.fn)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if len(got.recs) != len(cs) {
		t.Fatalf("replayed %d records, want %d", len(got.recs), len(cs))
	}
	for i, c := range got.recs {
		if c != cs[i] {
			t.Fatalf("record %d = %+v, want %+v", i, c, cs[i])
		}
		if got.lsns[i] != uint64(i+1) {
			t.Fatalf("lsn[%d] = %d, want %d", i, got.lsns[i], i+1)
		}
	}
	if next := l2.NextLSN(); next != uint64(len(cs)+1) {
		t.Fatalf("NextLSN = %d, want %d", next, len(cs)+1)
	}
	st := l2.ReplayStats()
	if st.Records != int64(len(cs)) || st.Skipped != 0 || st.TruncatedBytes != 0 {
		t.Fatalf("replay stats %+v", st)
	}
}

func TestLogRotationAndAfterFloor(t *testing.T) {
	fs := testFS(t)
	// Tiny segments force many rotations.
	l, err := OpenLog(fs, LogOptions{SegmentBytes: 10 * frameSize}, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	cs := corpus(100, 2)
	for _, c := range cs {
		if _, err := l.Append([]CheckIn{c}); err != nil {
			t.Fatal(err)
		}
	}
	if segs := l.Segments(); segs < 5 {
		t.Fatalf("only %d segments after 100 tiny-segment appends", segs)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Replay with a floor skips everything at or below it.
	var got memApply
	l2, err := OpenLog(fs, LogOptions{SegmentBytes: 10 * frameSize}, 40, got.fn)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if len(got.recs) != 60 {
		t.Fatalf("replayed %d records past floor 40, want 60", len(got.recs))
	}
	if got.lsns[0] != 41 {
		t.Fatalf("first replayed LSN = %d, want 41", got.lsns[0])
	}
	st := l2.ReplayStats()
	if st.Skipped != 40 {
		t.Fatalf("skipped %d, want 40", st.Skipped)
	}
}

func TestLogConcurrentAppends(t *testing.T) {
	fs := testFS(t)
	reg := obs.NewRegistry()
	l, err := OpenLog(fs, LogOptions{Metrics: NewMetrics(reg)}, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	const writers, perWriter = 8, 50
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				c := CheckIn{POI: int64(w + 1), At: int64(i)}
				lsn, err := l.Append([]CheckIn{c})
				if err != nil {
					errs <- err
					return
				}
				if l.DurableLSN() < lsn {
					errs <- fmt.Errorf("durable < acked LSN %d", lsn)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	var got memApply
	l2, err := OpenLog(fs, LogOptions{}, 0, got.fn)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if len(got.recs) != writers*perWriter {
		t.Fatalf("replayed %d, want %d", len(got.recs), writers*perWriter)
	}
	// LSNs contiguous from 1; per-writer record order preserved.
	perW := make(map[int64]int64)
	for i, lsn := range got.lsns {
		if lsn != uint64(i+1) {
			t.Fatalf("lsn[%d] = %d", i, lsn)
		}
		c := got.recs[i]
		if c.At < perW[c.POI] {
			t.Fatalf("writer %d records reordered: %d after %d", c.POI, c.At, perW[c.POI])
		}
		perW[c.POI] = c.At
	}
}

// TestGroupCommitCoalesces pins the group-commit mechanism itself: while one
// fsync is in flight, every queued append must ride the next one, so with a
// slow disk the number of fsyncs stays far below the number of appends.
func TestGroupCommitCoalesces(t *testing.T) {
	fs := testFS(t)
	reg := obs.NewRegistry()
	slow := &SlowFS{FS: fs, SyncDelay: 2 * time.Millisecond}
	l, err := OpenLog(slow, LogOptions{Metrics: NewMetrics(reg)}, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	const writers, perWriter = 16, 20
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if _, err := l.Append([]CheckIn{{POI: int64(w + 1), At: int64(i)}}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	appends := reg.Counter("tartree_wal_appends_total").Value()
	fsyncs := reg.Counter("tartree_wal_fsyncs_total").Value()
	if appends != writers*perWriter {
		t.Fatalf("appends = %d, want %d", appends, writers*perWriter)
	}
	// 16 writers against a 2ms fsync: perfect coalescing would need ~20
	// fsyncs; even heavy scheduling noise keeps it far under one per append.
	if fsyncs*2 > appends {
		t.Fatalf("group commit did not coalesce: %d fsyncs for %d appends", fsyncs, appends)
	}
	t.Logf("%d appends in %d fsyncs (%.1fx coalescing)", appends, fsyncs, float64(appends)/float64(fsyncs))
}

func TestTruncateThrough(t *testing.T) {
	fs := testFS(t)
	l, err := OpenLog(fs, LogOptions{SegmentBytes: 10 * frameSize}, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	cs := corpus(95, 3)
	for _, c := range cs {
		if _, err := l.Append([]CheckIn{c}); err != nil {
			t.Fatal(err)
		}
	}
	before := l.Segments()
	if before < 5 {
		t.Fatalf("want several segments, got %d", before)
	}
	if err := l.TruncateThrough(50); err != nil {
		t.Fatal(err)
	}
	after := l.Segments()
	if after >= before {
		t.Fatalf("TruncateThrough removed nothing (%d -> %d)", before, after)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Only records past the checkpoint floor remain; replay with the same
	// floor recovers exactly the uncovered suffix.
	var got memApply
	l2, err := OpenLog(fs, LogOptions{}, 50, got.fn)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if len(got.recs) != 45 {
		t.Fatalf("replayed %d, want 45", len(got.recs))
	}
	for i, c := range got.recs {
		if c != cs[50+i] {
			t.Fatalf("record %d mismatch", i)
		}
	}
}

func TestAppendAfterClose(t *testing.T) {
	fs := testFS(t)
	l, err := OpenLog(fs, LogOptions{}, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append([]CheckIn{{POI: 1, At: 1}}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append([]CheckIn{{POI: 1, At: 2}}); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close: %v", err)
	}
}

func TestNoSyncStillReplays(t *testing.T) {
	fs := testFS(t)
	l, err := OpenLog(fs, LogOptions{NoSync: true}, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	cs := corpus(30, 4)
	if _, err := l.Append(cs); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	var got memApply
	l2, err := OpenLog(fs, LogOptions{NoSync: true}, 0, got.fn)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if len(got.recs) != len(cs) {
		t.Fatalf("replayed %d, want %d", len(got.recs), len(cs))
	}
}

func TestCorruptMiddleSegmentFails(t *testing.T) {
	dir := t.TempDir()
	fs, err := NewDirFS(dir)
	if err != nil {
		t.Fatal(err)
	}
	l, err := OpenLog(fs, LogOptions{SegmentBytes: 10 * frameSize}, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range corpus(40, 5) {
		if _, err := l.Append([]CheckIn{c}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	names, err := fs.List()
	if err != nil {
		t.Fatal(err)
	}
	var segs []string
	for _, n := range names {
		if _, ok := parseSegmentName(n); ok {
			segs = append(segs, n)
		}
	}
	if len(segs) < 3 {
		t.Fatalf("need >= 3 segments, got %d", len(segs))
	}
	// Shorten a middle segment: that is corruption, not a torn tail.
	mid := segs[1]
	size, err := fs.Size(mid)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Truncate(mid, size-4); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenLog(fs, LogOptions{}, 0, nil); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupt middle segment: err = %v, want ErrCorrupt", err)
	}
}
