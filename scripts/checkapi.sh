#!/bin/sh
# checkapi.sh — golden-file gate on the public API surface.
#
# The committed file api/tartree.txt is the `go doc -all`-derived surface of
# the facade package. CI regenerates it and fails on any drift, so every
# breaking (or expanding) API change shows up in review as a diff of that
# file rather than slipping in silently.
#
#   scripts/checkapi.sh          verify (exit 1 on drift)
#   scripts/checkapi.sh -update  accept the current surface as golden
set -e
cd "$(dirname "$0")/.."
golden=api/tartree.txt
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT
go doc -all . >"$tmp"
# Presence gate on load-bearing symbols: the golden diff catches drift, but
# a blind -update can still drop a symbol downstream code depends on. Any
# name listed here must survive in the regenerated surface, update or not.
required="
func New(
func NewExplain(
func NewPlanner(
func NewPlanEstimator(
func NewCache(
func NewMetrics(
func NewTrace(
type Explain =
type ExplainPlan =
type ExplainPop =
type ExplainPoint =
type ExplainNode =
type ExplainBand =
type Planner =
type Plan =
type Engine =
type Querier =
type QueryOpts =
type QueryStats =
type ExplainShard =
UseIndex
UseScan
ErrInvalid
ErrCanceled
"
missing=0
echo "$required" | while IFS= read -r sym; do
    [ -z "$sym" ] && continue
    if ! grep -qF "$sym" "$tmp"; then
        echo "checkapi: required symbol missing from API surface: $sym" >&2
        exit 1
    fi
done || missing=1
if [ "$missing" -ne 0 ]; then
    exit 1
fi
if [ "${1:-}" = "-update" ]; then
    cp "$tmp" "$golden"
    echo "checkapi: updated $golden"
    exit 0
fi
if ! diff -u "$golden" "$tmp"; then
    echo "checkapi: public API surface drifted from $golden." >&2
    echo "checkapi: if the change is intentional, run scripts/checkapi.sh -update and commit." >&2
    exit 1
fi
echo "checkapi: API surface matches $golden"
