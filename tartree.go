// Package tartree is the public facade of the TAR-tree library, a
// reproduction of "K-Nearest Neighbor Temporal Aggregate Queries" (Sun,
// Qi, Zheng, Zhang; EDBT 2015).
//
// A k-nearest neighbor temporal aggregate (kNNTA) query returns the top-k
// points of interest ranked by a weighted sum of (i) the spatial distance
// to a query point and (ii) a temporal aggregate — the count of check-ins —
// over a query time interval:
//
//	f(p) = α0·d(p, q) + (1−α0)·(1 − g(p, Iq))
//
// The TAR-tree answers such queries with best-first search over an R-tree
// whose every entry carries a temporal index on the aggregate (TIA), with
// entries grouped by the integral 3D strategy: two spatial dimensions plus
// one aggregate-rate dimension.
//
// # Quick start
//
//	tr, err := tartree.New(tartree.Options{
//		World:       tartree.WorldRect(0, 0, 100, 100),
//		EpochStart:  0,
//		EpochLength: 3600, // one hour
//	})
//	tr.InsertPOI(tartree.POI{ID: 1, X: 10, Y: 20}, nil)
//	tr.AddCheckIn(1, now)
//	tr.FlushEpochs(now)
//	results, stats, err := tr.Query(tartree.Query{
//		X: 12, Y: 18,
//		Iq:     tartree.Interval{Start: now - 3600, End: now},
//		K:      10,
//		Alpha0: 0.3,
//	})
//
// Beyond queries, the library provides the paper's two enhancements — the
// minimum weight adjustment (internal/mwa) and collective batch processing
// (internal/batch) — plus the Section 6 cost model (internal/costmodel),
// power-law fitting (internal/powerlaw), calibrated LBSN data generation
// (internal/lbsn), and the experiment harness that regenerates every table
// and figure of the paper's evaluation (internal/bench, cmd/tarbench).
package tartree

import (
	"io"

	"tartree/internal/aggcache"
	"tartree/internal/core"
	"tartree/internal/geo"
	"tartree/internal/obs"
	"tartree/internal/planner"
	"tartree/internal/tia"
)

// Re-exported core types: the facade keeps downstream code decoupled from
// internal package paths.
type (
	// Tree is a TAR-tree index.
	Tree = core.Tree
	// Options configures a Tree.
	Options = core.Options
	// POI is a point of interest.
	POI = core.POI
	// Query is a kNNTA query.
	Query = core.Query
	// Result is one ranked answer.
	Result = core.Result
	// QueryStats counts the work a query performed.
	QueryStats = core.QueryStats
	// Grouping selects the entry-grouping strategy.
	Grouping = core.Grouping
	// Interval is a half-open time interval.
	Interval = tia.Interval
	// Record is one epoch's aggregate ⟨ts, te, agg⟩.
	Record = tia.Record
	// Rect is an axis-aligned rectangle.
	Rect = geo.Rect
	// Epochs discretizes the time axis; FixedEpochs is the uniform grid,
	// GeometricEpochs the varied-length grid of Section 3.1.
	Epochs = core.Epochs
	// FixedEpochs is the uniform epoch grid.
	FixedEpochs = core.FixedEpochs
	// GeometricEpochs is the doubling-length epoch grid.
	GeometricEpochs = core.GeometricEpochs
	// AggFunc folds matched epochs into the temporal aggregate.
	AggFunc = tia.Func
	// MetricsRegistry collects the tree's metrics when set in
	// Options.Metrics; serve it with its WriteTo (Prometheus text format).
	MetricsRegistry = obs.Registry
	// Trace aggregates timed spans of a single query; pass one built with
	// NewTrace to (*Tree).QueryCtx via QueryOpts.Trace.
	Trace = obs.Trace
	// QueryOpts tunes one (*Tree).QueryCtx call: per-query trace, cache
	// bypass, access-counting control. The zero value (or nil) is the
	// default behavior.
	QueryOpts = core.QueryOpts
	// Querier is the one call shape every kNNTA execution engine exposes:
	// a local Tree, a durable WAL store, a remote tarserve over HTTP and
	// the scatter-gather shard coordinator all implement it, so callers
	// are written once against the interface.
	Querier = core.Querier
	// Span is one node of a structured span tree; pass a request span via
	// QueryOpts.Span and the query stages (cache probe, best-first search,
	// cache store) are recorded as its children. A nil *Span is a no-op.
	Span = obs.Span
	// SpanContext identifies a span for W3C traceparent propagation.
	SpanContext = obs.SpanContext
	// FinishedTrace is a completed span tree as delivered to a TraceSink;
	// render it with WriteTree or export it with WriteChromeTrace.
	FinishedTrace = obs.FinishedTrace
	// TraceSink receives finished span traces.
	TraceSink = obs.TraceSink
	// TraceBuffer is an in-memory ring of the most recent finished span
	// traces; it implements TraceSink.
	TraceBuffer = obs.TraceBuffer
	// Cache is the shared epoch-versioned aggregate/result cache attached
	// via Options.Cache; build one with NewCache.
	Cache = aggcache.Cache
	// CacheStats is a point-in-time snapshot of a Cache's counters.
	CacheStats = aggcache.Stats
	// Explain is the per-query EXPLAIN/ANALYZE recorder: create one with
	// NewExplain, attach it via QueryOpts.Explain, and after the query it
	// holds the plan (when a planner ran), the best-first pop log, the f(pk)
	// convergence timeline, the pruned frontier and the probe attribution.
	// A nil *Explain is free.
	Explain = core.Explain
	// ExplainPlan is the planner's side of an explain: engine choice and
	// Section-6 estimates.
	ExplainPlan = core.ExplainPlan
	// ExplainPop is one best-first pop of an explain's pop log.
	ExplainPop = core.ExplainPop
	// ExplainPoint is one step of the kth-score convergence timeline.
	ExplainPoint = core.ExplainPoint
	// ExplainNode is one never-expanded frontier element.
	ExplainNode = core.ExplainNode
	// ExplainBand is one slab of the Section-6.3 node-access estimation.
	ExplainBand = core.ExplainBand
	// ExplainShard is one shard's attribution row in a coordinator's
	// explain: candidates shipped, rounds, bound pushes, work counters.
	ExplainShard = core.ExplainShard
	// Planner is the Section-6 cost-model query optimizer; build one with
	// NewPlanner (both engines) or NewPlanEstimator (estimates only).
	Planner = planner.Planner
	// Plan is the optimizer's decision with its supporting estimates.
	Plan = planner.Plan
	// Engine names the execution strategy a Plan selects.
	Engine = planner.Engine
)

// Engines a Plan can select.
const (
	// UseIndex answers with best-first search over the TAR-tree.
	UseIndex = planner.UseIndex
	// UseScan answers with the sequential scan.
	UseScan = planner.UseScan
)

// Sentinel errors of the query path, for errors.Is.
var (
	// ErrInvalid is wrapped by every query-validation failure.
	ErrInvalid = core.ErrInvalid
	// ErrCanceled is wrapped when a query's context is canceled or its
	// deadline passes; the stats returned alongside are valid partial
	// counts.
	ErrCanceled = core.ErrCanceled
)

// Aggregate functions (Section 3.1).
const (
	// AggSum counts check-ins over the interval (the default).
	AggSum = tia.FuncSum
	// AggMax ranks by the busiest single epoch in the interval.
	AggMax = tia.FuncMax
)

// Grouping strategies (Section 5 of the paper).
const (
	// TAR3D is the integral 3D strategy — the TAR-tree proper.
	TAR3D = core.TAR3D
	// IndSpa groups by spatial extents only.
	IndSpa = core.IndSpa
	// IndAgg groups by aggregate-distribution similarity.
	IndAgg = core.IndAgg
)

// New creates an empty TAR-tree.
func New(opts Options) (*Tree, error) { return core.NewTree(opts) }

// NewMetrics creates an empty metrics registry for Options.Metrics.
func NewMetrics() *MetricsRegistry { return obs.NewRegistry() }

// NewTrace creates a per-query trace for QueryOpts.Trace.
func NewTrace() *Trace { return obs.NewTrace() }

// NewExplain creates an empty EXPLAIN/ANALYZE recorder for
// QueryOpts.Explain.
func NewExplain() *Explain { return core.NewExplain() }

// NewPlanner builds a cost-model planner for tr with both engines: Plan
// chooses between the TAR-tree and a sequential scan materialized from the
// tree's POI histories, and Query executes the choice.
func NewPlanner(tr *Tree) (*Planner, error) { return planner.New(tr) }

// NewPlanEstimator builds an estimate-only planner: Plan and the
// calibration metrics work, but no scan engine is materialized and Query
// always executes the tree. Servers attach one for EXPLAIN support.
func NewPlanEstimator(tr *Tree) *Planner { return planner.NewEstimator(tr) }

// StartTrace opens a root span whose finished span tree is delivered to
// sink when the span's Finish is called. A zero parent starts a fresh
// trace; a parent parsed from a W3C traceparent joins the caller's trace.
func StartTrace(name string, parent SpanContext, sink TraceSink) *Span {
	return obs.StartTrace(name, parent, sink)
}

// NewTraceBuffer creates a ring buffer keeping the last n finished span
// traces, for use as the sink of StartTrace.
func NewTraceBuffer(n int) *TraceBuffer { return obs.NewTraceBuffer(n) }

// NewCache creates a shared epoch-versioned cache bounded to roughly
// maxBytes for Options.Cache. maxBytes <= 0 returns nil, the no-op cache.
func NewCache(maxBytes int64) *Cache { return aggcache.New(maxBytes) }

// Load reconstructs a tree saved with (*Tree).SaveSnapshot. A nil factory
// selects the default disk B+-tree TIAs.
func Load(r io.Reader, factory tia.Factory) (*Tree, error) {
	return core.LoadSnapshot(r, factory)
}

// WorldRect builds the 2D world rectangle from corner coordinates.
func WorldRect(x0, y0, x1, y1 float64) Rect {
	return Rect{Min: geo.Vector{x0, y0}, Max: geo.Vector{x1, y1}}
}
