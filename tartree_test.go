package tartree_test

import (
	"bytes"
	"math"
	"testing"

	"tartree"
)

// TestFacadeEndToEnd drives the public API exactly as the README's
// quickstart does: build, insert, ingest check-ins, flush, query.
func TestFacadeEndToEnd(t *testing.T) {
	tr, err := tartree.New(tartree.Options{
		World:       tartree.WorldRect(0, 0, 100, 100),
		EpochStart:  0,
		EpochLength: 3600,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.InsertPOI(tartree.POI{ID: 1, X: 20, Y: 30}, []tartree.Record{
		{Ts: 0, Te: 3600, Agg: 4},
	}); err != nil {
		t.Fatal(err)
	}
	if err := tr.InsertPOI(tartree.POI{ID: 2, X: 60, Y: 65}, nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := tr.AddCheckIn(2, 3600+int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.FlushEpochs(2 * 3600); err != nil {
		t.Fatal(err)
	}
	results, stats, err := tr.Query(tartree.Query{
		X: 50, Y: 50,
		Iq:     tartree.Interval{Start: 0, End: 2 * 3600},
		K:      2,
		Alpha0: 0.3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d", len(results))
	}
	// POI 2: closer to the query point and more popular — must rank first.
	if results[0].POI.ID != 2 {
		t.Errorf("top-1 = %d, want 2", results[0].POI.ID)
	}
	if results[0].Agg != 10 {
		t.Errorf("agg = %d, want 10", results[0].Agg)
	}
	if stats.RTreeAccesses() == 0 {
		t.Error("no node accesses recorded")
	}
	// Score arithmetic: α0·S0 + α1·S1.
	for _, r := range results {
		if math.Abs(r.Score-(0.3*r.S0+0.7*r.S1)) > 1e-12 {
			t.Errorf("score components inconsistent: %+v", r)
		}
	}
	// Grouping constants exist and stringify.
	for _, g := range []tartree.Grouping{tartree.TAR3D, tartree.IndSpa, tartree.IndAgg} {
		if g.String() == "" {
			t.Error("empty grouping name")
		}
	}
}

// TestFacadeSnapshot exercises the save/load cycle through the facade.
func TestFacadeSnapshot(t *testing.T) {
	tr, err := tartree.New(tartree.Options{
		World:       tartree.WorldRect(0, 0, 10, 10),
		EpochStart:  0,
		EpochLength: 10,
		AggFunc:     tartree.AggMax,
	})
	if err != nil {
		t.Fatal(err)
	}
	tr.InsertPOI(tartree.POI{ID: 1, X: 1, Y: 1}, []tartree.Record{{Ts: 0, Te: 10, Agg: 7}})
	var buf bytes.Buffer
	if err := tr.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := tartree.Load(&buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 1 {
		t.Fatalf("len = %d", got.Len())
	}
	a, err := got.Aggregate(1, tartree.Interval{Start: 0, End: 100})
	if err != nil || a != 7 {
		t.Fatalf("aggregate = %d %v", a, err)
	}
}

// TestFacadeGeometricEpochs drives the varied-length grid via the facade.
func TestFacadeGeometricEpochs(t *testing.T) {
	tr, err := tartree.New(tartree.Options{
		World:  tartree.WorldRect(0, 0, 10, 10),
		Epochs: tartree.GeometricEpochs{Start: 0, First: 60},
	})
	if err != nil {
		t.Fatal(err)
	}
	tr.InsertPOI(tartree.POI{ID: 1, X: 1, Y: 1}, nil)
	tr.AddCheckIn(1, 30)
	tr.AddCheckIn(1, 100) // second epoch [60, 180)
	if err := tr.FlushAll(); err != nil {
		t.Fatal(err)
	}
	a, err := tr.Aggregate(1, tartree.Interval{Start: 0, End: 180})
	if err != nil || a != 2 {
		t.Fatalf("aggregate = %d %v", a, err)
	}
}
